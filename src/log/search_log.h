// The search log data model (Section 3 of the paper).
//
// A search log D is a multiset of click-through tuples
//   [user s_k, query q_i, url u_j, count c_ijk].
// privsan stores D dictionary-encoded and immutable:
//
//   * string dictionaries for users, queries, urls;
//   * a pair dictionary mapping (query, url) to a dense PairId — the paper's
//     "distinct click-through query-url pair" (q_i, u_j);
//   * a CSR layout per pair over (user, count) — the query-url-user
//     ("triplet") histogram {c_ijk};
//   * a CSR layout per user over (pair, count) — the user log A_k;
//   * per-pair totals {c_ij} — the query-url histogram.
//
// Terminology mapping to the paper:
//   total_clicks()            |D| = sum of all c_ijk  (support denominators)
//   num_tuples()              number of distinct (s_k, q_i, u_j) triplets
//   pair_total(p)             c_ij
//   TripletsOf(p)             {(s_k, c_ijk)} for pair p
//   UserLogOf(u)              A_k = {(pair, c_ijk)} for user u
#ifndef PRIVSAN_LOG_SEARCH_LOG_H_
#define PRIVSAN_LOG_SEARCH_LOG_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace privsan {

using UserId = uint32_t;
using QueryId = uint32_t;
using UrlId = uint32_t;
using PairId = uint32_t;

// One (user, count) cell of a pair's triplet histogram.
struct UserCount {
  UserId user;
  uint64_t count;

  bool operator==(const UserCount&) const = default;
};

// One (pair, count) cell of a user log A_k.
struct PairCount {
  PairId pair;
  uint64_t count;

  bool operator==(const PairCount&) const = default;
};

class SearchLog;

// Accumulates tuples (duplicates are summed) and finalizes into a SearchLog.
class SearchLogBuilder {
 public:
  SearchLogBuilder() = default;

  // Adds `count` clicks of (query, url) for `user`. count == 0 is ignored.
  void Add(std::string_view user, std::string_view query,
           std::string_view url, uint64_t count);

  // Adds every tuple of `log` (the append/coalesce merge primitive:
  // same-name users and pairs accumulate).
  void AddAll(const SearchLog& log);

  // Pre-intern ids without adding any clicks. Ids are assigned by first
  // appearance, so a deserializer (serve/snapshot.cc) reproduces a log's
  // exact id assignment by declaring users, then pairs, in their original
  // id order before Add-ing the tuples.
  void DeclareUser(std::string_view user);
  void DeclarePair(std::string_view query, std::string_view url);

  // Finalizes. The builder is left empty.
  SearchLog Build();

 private:
  friend class SearchLog;

  uint32_t InternUser(std::string_view name);
  uint32_t InternQuery(std::string_view name);
  uint32_t InternUrl(std::string_view name);

  std::vector<std::string> users_, queries_, urls_;
  std::unordered_map<std::string, uint32_t> user_index_, query_index_,
      url_index_;
  // (query_id << 32 | url_id) -> PairId.
  std::unordered_map<uint64_t, PairId> pair_index_;
  std::vector<std::pair<QueryId, UrlId>> pairs_;
  // (pair_id << 32 | user_id) -> accumulated count.
  std::unordered_map<uint64_t, uint64_t> cell_counts_;
};

class SearchLog {
 public:
  SearchLog() = default;

  SearchLog(const SearchLog&) = default;
  SearchLog& operator=(const SearchLog&) = default;
  SearchLog(SearchLog&&) noexcept = default;
  SearchLog& operator=(SearchLog&&) noexcept = default;

  // --- Sizes -------------------------------------------------------------
  size_t num_users() const { return user_names_.size(); }
  size_t num_queries() const { return query_names_.size(); }
  size_t num_urls() const { return url_names_.size(); }
  size_t num_pairs() const { return pair_totals_.size(); }
  // Distinct (user, pair) triplets with positive count.
  size_t num_tuples() const { return triplet_users_.size(); }
  // |D|: total click count, the paper's size of the search log.
  uint64_t total_clicks() const { return total_clicks_; }

  // --- Histograms ---------------------------------------------------------
  // c_ij for pair p.
  uint64_t pair_total(PairId p) const { return pair_totals_[p]; }
  // The triplet histogram restricted to pair p: all (s_k, c_ijk), sorted by
  // user id.
  std::span<const UserCount> TripletsOf(PairId p) const;
  // User u's log A_k: all (pair, c_ijk), sorted by pair id.
  std::span<const PairCount> UserLogOf(UserId u) const;
  // Count of clicks user u has on pair p (0 if none).
  uint64_t TripletCount(PairId p, UserId u) const;
  // Number of distinct users holding pair p.
  size_t PairUserCount(PairId p) const { return TripletsOf(p).size(); }

  // --- Dictionaries --------------------------------------------------------
  const std::string& user_name(UserId u) const { return user_names_[u]; }
  const std::string& query_name(QueryId q) const { return query_names_[q]; }
  const std::string& url_name(UrlId u) const { return url_names_[u]; }
  QueryId pair_query(PairId p) const { return pair_defs_[p].first; }
  UrlId pair_url(PairId p) const { return pair_defs_[p].second; }

  // Lookup helpers; return Status::NotFound if absent.
  Result<UserId> FindUser(std::string_view name) const;
  Result<PairId> FindPair(std::string_view query, std::string_view url) const;

  // The pair's support c_ij / |D| (Section 5.2).
  double PairSupport(PairId p) const;

  // Canonical composite name key of pair p, collision-free for arbitrary
  // byte content (the query is length-prefixed, so no separator byte can be
  // forged by a crafted name). Basis remapping and DP-row patching both
  // match pairs across logs by this key — they must agree on it.
  std::string PairNameKey(PairId p) const;

  // Estimated heap footprint of this log (dictionaries + CSR layouts), the
  // per-tenant accounting unit of the serve layer's global memory budget.
  // An O(names) walk — callers cache it per state change, not per query.
  size_t ResidentBytes() const;

 private:
  friend class SearchLogBuilder;

  std::vector<std::string> user_names_, query_names_, url_names_;
  std::vector<std::pair<QueryId, UrlId>> pair_defs_;

  std::vector<uint64_t> pair_totals_;  // c_ij

  // CSR over pairs: triplet histogram.
  std::vector<size_t> pair_offsets_;       // size num_pairs()+1
  std::vector<UserCount> triplet_users_;   // sorted by user within each pair

  // CSR over users: user logs.
  std::vector<size_t> user_offsets_;      // size num_users()+1
  std::vector<PairCount> user_pairs_;     // sorted by pair within each user

  uint64_t total_clicks_ = 0;
};

// Users [begin, end) of `log`, as a standalone SearchLog — the split /
// append primitive shared by the serve benches, tests and examples.
SearchLog UserSlice(const SearchLog& log, UserId begin, UserId end);

}  // namespace privsan

#endif  // PRIVSAN_LOG_SEARCH_LOG_H_
