#include "log/preprocess.h"

#include <atomic>

#include "serve/thread_pool.h"

namespace privsan {

bool IsUniquePair(const SearchLog& log, PairId p) {
  // With per-user aggregation, c_ijk == c_ij for some k iff a single user
  // holds the pair.
  return log.PairUserCount(p) <= 1;
}

PreprocessResult RemoveUniquePairs(const SearchLog& log) {
  return RemoveUniquePairs(log, nullptr);
}

PreprocessResult RemoveUniquePairs(const SearchLog& log,
                                   serve::ThreadPool* pool) {
  PreprocessResult result;

  // Parallel stage: classify every pair. Counters are commutative integer
  // sums, so the sharded totals equal the serial ones.
  const size_t num_pairs = log.num_pairs();
  std::vector<uint8_t> retained(num_pairs, 0);
  std::atomic<uint64_t> pairs_removed{0}, pairs_retained{0};
  std::atomic<uint64_t> clicks_removed{0}, clicks_retained{0};
  serve::ParallelFor(pool, num_pairs, [&](size_t begin, size_t end) {
    uint64_t removed = 0, kept = 0, removed_clicks = 0, kept_clicks = 0;
    for (PairId p = static_cast<PairId>(begin); p < end; ++p) {
      if (IsUniquePair(log, p)) {
        ++removed;
        removed_clicks += log.pair_total(p);
      } else {
        retained[p] = 1;
        ++kept;
        kept_clicks += log.pair_total(p);
      }
    }
    pairs_removed.fetch_add(removed, std::memory_order_relaxed);
    pairs_retained.fetch_add(kept, std::memory_order_relaxed);
    clicks_removed.fetch_add(removed_clicks, std::memory_order_relaxed);
    clicks_retained.fetch_add(kept_clicks, std::memory_order_relaxed);
  });
  result.stats.pairs_removed = pairs_removed.load();
  result.stats.pairs_retained = pairs_retained.load();
  result.stats.clicks_removed = clicks_removed.load();
  result.stats.clicks_retained = clicks_retained.load();

  // Serial stage: rebuild in pair order — ids are assigned by insertion
  // order, so this must not be sharded.
  SearchLogBuilder builder;
  std::vector<bool> user_retained(log.num_users(), false);
  for (PairId p = 0; p < num_pairs; ++p) {
    if (!retained[p]) continue;
    const std::string& query = log.query_name(log.pair_query(p));
    const std::string& url = log.url_name(log.pair_url(p));
    for (const UserCount& cell : log.TripletsOf(p)) {
      builder.Add(log.user_name(cell.user), query, url, cell.count);
      user_retained[cell.user] = true;
    }
  }
  for (bool kept : user_retained) {
    if (!kept) ++result.stats.users_dropped;
  }
  result.log = builder.Build();
  return result;
}

}  // namespace privsan
