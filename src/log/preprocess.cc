#include "log/preprocess.h"

namespace privsan {

bool IsUniquePair(const SearchLog& log, PairId p) {
  // With per-user aggregation, c_ijk == c_ij for some k iff a single user
  // holds the pair.
  return log.PairUserCount(p) <= 1;
}

PreprocessResult RemoveUniquePairs(const SearchLog& log) {
  PreprocessResult result;
  SearchLogBuilder builder;

  std::vector<bool> user_retained(log.num_users(), false);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (IsUniquePair(log, p)) {
      ++result.stats.pairs_removed;
      result.stats.clicks_removed += log.pair_total(p);
      continue;
    }
    ++result.stats.pairs_retained;
    result.stats.clicks_retained += log.pair_total(p);
    const std::string& query = log.query_name(log.pair_query(p));
    const std::string& url = log.url_name(log.pair_url(p));
    for (const UserCount& cell : log.TripletsOf(p)) {
      builder.Add(log.user_name(cell.user), query, url, cell.count);
      user_retained[cell.user] = true;
    }
  }
  for (bool retained : user_retained) {
    if (!retained) ++result.stats.users_dropped;
  }
  result.log = builder.Build();
  return result;
}

}  // namespace privsan
