#include "log/log_io.h"

#include <string>

#include "util/csv.h"
#include "util/string_util.h"

namespace privsan {

Status WriteSearchLogTsv(const SearchLog& log, const std::string& path) {
  DelimitedWriter writer(path, '\t');
  PRIVSAN_RETURN_IF_ERROR(writer.status());
  PRIVSAN_RETURN_IF_ERROR(writer.WriteRow(
      {"# user", "query", "url", "count"}));
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      PRIVSAN_RETURN_IF_ERROR(
          writer.WriteRow({log.user_name(u),
                           log.query_name(log.pair_query(cell.pair)),
                           log.url_name(log.pair_url(cell.pair)),
                           std::to_string(cell.count)}));
    }
  }
  return writer.Close();
}

Result<SearchLog> ReadSearchLogTsv(const std::string& path) {
  SearchLogBuilder builder;
  Status status = ReadDelimitedFile(
      path, '\t',
      [&](size_t line, const std::vector<std::string>& fields) -> Status {
        if (fields.size() != 4) {
          return Status::InvalidArgument(
              path + ":" + std::to_string(line) +
              ": expected 4 tab-separated fields, got " +
              std::to_string(fields.size()));
        }
        PRIVSAN_ASSIGN_OR_RETURN(int64_t count, ParseInt64(fields[3]));
        if (count < 0) {
          return Status::InvalidArgument(path + ":" + std::to_string(line) +
                                         ": negative count");
        }
        builder.Add(fields[0], fields[1], fields[2],
                    static_cast<uint64_t>(count));
        return Status::OK();
      });
  if (!status.ok()) return status;
  return builder.Build();
}

}  // namespace privsan
