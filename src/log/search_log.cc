#include "log/search_log.h"

#include <algorithm>

#include "util/logging.h"

namespace privsan {

namespace {
uint64_t PackKey(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

uint32_t Intern(std::string_view name, std::vector<std::string>& names,
                std::unordered_map<std::string, uint32_t>& index) {
  auto it = index.find(std::string(name));
  if (it != index.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names.size());
  names.emplace_back(name);
  index.emplace(names.back(), id);
  return id;
}
}  // namespace

uint32_t SearchLogBuilder::InternUser(std::string_view name) {
  return Intern(name, users_, user_index_);
}
uint32_t SearchLogBuilder::InternQuery(std::string_view name) {
  return Intern(name, queries_, query_index_);
}
uint32_t SearchLogBuilder::InternUrl(std::string_view name) {
  return Intern(name, urls_, url_index_);
}

void SearchLogBuilder::AddAll(const SearchLog& log) {
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      Add(log.user_name(u), log.query_name(log.pair_query(cell.pair)),
          log.url_name(log.pair_url(cell.pair)), cell.count);
    }
  }
}

void SearchLogBuilder::DeclareUser(std::string_view user) {
  InternUser(user);
}

void SearchLogBuilder::DeclarePair(std::string_view query,
                                   std::string_view url) {
  QueryId q = InternQuery(query);
  UrlId r = InternUrl(url);
  uint64_t pair_key = PackKey(q, r);
  auto [it, inserted] =
      pair_index_.emplace(pair_key, static_cast<PairId>(pairs_.size()));
  if (inserted) pairs_.emplace_back(q, r);
}

void SearchLogBuilder::Add(std::string_view user, std::string_view query,
                           std::string_view url, uint64_t count) {
  if (count == 0) return;
  UserId u = InternUser(user);
  QueryId q = InternQuery(query);
  UrlId r = InternUrl(url);
  uint64_t pair_key = PackKey(q, r);
  auto [it, inserted] =
      pair_index_.emplace(pair_key, static_cast<PairId>(pairs_.size()));
  if (inserted) pairs_.emplace_back(q, r);
  PairId p = it->second;
  cell_counts_[PackKey(p, u)] += count;
}

SearchLog SearchLogBuilder::Build() {
  SearchLog log;
  log.user_names_ = std::move(users_);
  log.query_names_ = std::move(queries_);
  log.url_names_ = std::move(urls_);
  log.pair_defs_ = std::move(pairs_);

  const size_t num_pairs = log.pair_defs_.size();
  const size_t num_users = log.user_names_.size();

  // First pass: per-pair and per-user tuple counts for CSR offsets.
  std::vector<size_t> pair_sizes(num_pairs, 0), user_sizes(num_users, 0);
  for (const auto& [key, count] : cell_counts_) {
    PairId p = static_cast<PairId>(key >> 32);
    UserId u = static_cast<UserId>(key & 0xffffffffULL);
    ++pair_sizes[p];
    ++user_sizes[u];
  }
  log.pair_offsets_.assign(num_pairs + 1, 0);
  for (size_t p = 0; p < num_pairs; ++p) {
    log.pair_offsets_[p + 1] = log.pair_offsets_[p] + pair_sizes[p];
  }
  log.user_offsets_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    log.user_offsets_[u + 1] = log.user_offsets_[u] + user_sizes[u];
  }

  const size_t num_tuples = cell_counts_.size();
  log.triplet_users_.resize(num_tuples);
  log.user_pairs_.resize(num_tuples);
  log.pair_totals_.assign(num_pairs, 0);

  std::vector<size_t> pair_cursor(log.pair_offsets_.begin(),
                                  log.pair_offsets_.end() - 1);
  std::vector<size_t> user_cursor(log.user_offsets_.begin(),
                                  log.user_offsets_.end() - 1);
  for (const auto& [key, count] : cell_counts_) {
    PairId p = static_cast<PairId>(key >> 32);
    UserId u = static_cast<UserId>(key & 0xffffffffULL);
    log.triplet_users_[pair_cursor[p]++] = UserCount{u, count};
    log.user_pairs_[user_cursor[u]++] = PairCount{p, count};
    log.pair_totals_[p] += count;
    log.total_clicks_ += count;
  }

  // Sort each CSR row for deterministic iteration and binary search.
  for (size_t p = 0; p < num_pairs; ++p) {
    std::sort(log.triplet_users_.begin() + log.pair_offsets_[p],
              log.triplet_users_.begin() + log.pair_offsets_[p + 1],
              [](const UserCount& a, const UserCount& b) {
                return a.user < b.user;
              });
  }
  for (size_t u = 0; u < num_users; ++u) {
    std::sort(log.user_pairs_.begin() + log.user_offsets_[u],
              log.user_pairs_.begin() + log.user_offsets_[u + 1],
              [](const PairCount& a, const PairCount& b) {
                return a.pair < b.pair;
              });
  }

  // Reset the builder.
  user_index_.clear();
  query_index_.clear();
  url_index_.clear();
  pair_index_.clear();
  cell_counts_.clear();
  return log;
}

std::span<const UserCount> SearchLog::TripletsOf(PairId p) const {
  PRIVSAN_CHECK(p < num_pairs());
  return {triplet_users_.data() + pair_offsets_[p],
          pair_offsets_[p + 1] - pair_offsets_[p]};
}

std::span<const PairCount> SearchLog::UserLogOf(UserId u) const {
  PRIVSAN_CHECK(u < num_users());
  return {user_pairs_.data() + user_offsets_[u],
          user_offsets_[u + 1] - user_offsets_[u]};
}

uint64_t SearchLog::TripletCount(PairId p, UserId u) const {
  auto triplets = TripletsOf(p);
  auto it = std::lower_bound(
      triplets.begin(), triplets.end(), u,
      [](const UserCount& a, UserId target) { return a.user < target; });
  if (it != triplets.end() && it->user == u) return it->count;
  return 0;
}

Result<UserId> SearchLog::FindUser(std::string_view name) const {
  for (size_t u = 0; u < user_names_.size(); ++u) {
    if (user_names_[u] == name) return static_cast<UserId>(u);
  }
  return Status::NotFound("user not found: " + std::string(name));
}

Result<PairId> SearchLog::FindPair(std::string_view query,
                                   std::string_view url) const {
  for (size_t p = 0; p < pair_defs_.size(); ++p) {
    if (query_names_[pair_defs_[p].first] == query &&
        url_names_[pair_defs_[p].second] == url) {
      return static_cast<PairId>(p);
    }
  }
  return Status::NotFound("pair not found: (" + std::string(query) + ", " +
                          std::string(url) + ")");
}

std::string SearchLog::PairNameKey(PairId p) const {
  const std::string& query = query_names_[pair_defs_[p].first];
  const std::string& url = url_names_[pair_defs_[p].second];
  return std::to_string(query.size()) + ':' + query + url;
}

size_t SearchLog::ResidentBytes() const {
  auto strings = [](const std::vector<std::string>& names) {
    size_t bytes = names.capacity() * sizeof(std::string);
    for (const std::string& name : names) {
      // Short strings live inside the std::string object (already counted);
      // longer ones own a heap buffer of capacity()+1.
      if (name.capacity() >= sizeof(std::string)) bytes += name.capacity() + 1;
    }
    return bytes;
  };
  return strings(user_names_) + strings(query_names_) + strings(url_names_) +
         pair_defs_.capacity() * sizeof(pair_defs_[0]) +
         pair_totals_.capacity() * sizeof(uint64_t) +
         pair_offsets_.capacity() * sizeof(size_t) +
         triplet_users_.capacity() * sizeof(UserCount) +
         user_offsets_.capacity() * sizeof(size_t) +
         user_pairs_.capacity() * sizeof(PairCount);
}

SearchLog UserSlice(const SearchLog& log, UserId begin, UserId end) {
  SearchLogBuilder builder;
  for (UserId u = begin; u < end && u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      builder.Add(log.user_name(u), log.query_name(log.pair_query(cell.pair)),
                  log.url_name(log.pair_url(cell.pair)), cell.count);
    }
  }
  return builder.Build();
}

double SearchLog::PairSupport(PairId p) const {
  PRIVSAN_CHECK(total_clicks_ > 0);
  return static_cast<double>(pair_totals_[p]) /
         static_cast<double>(total_clicks_);
}

}  // namespace privsan
