#include "log/histogram.h"

namespace privsan {

QueryUrlHistogram QueryUrlHistogram::FromLog(const SearchLog& log) {
  QueryUrlHistogram histogram;
  histogram.counts.resize(log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    histogram.counts[p] = log.pair_total(p);
    histogram.total += histogram.counts[p];
  }
  return histogram;
}

OutputCounts OutputCounts::FromVector(std::vector<uint64_t> x) {
  OutputCounts output;
  output.counts = std::move(x);
  for (uint64_t c : output.counts) output.total += c;
  return output;
}

std::vector<double> TripletHistogramView::TrialProbabilities(PairId p) const {
  auto row = Row(p);
  const double total = static_cast<double>(RowTotal(p));
  std::vector<double> probabilities;
  probabilities.reserve(row.size());
  for (const UserCount& cell : row) {
    probabilities.push_back(static_cast<double>(cell.count) / total);
  }
  return probabilities;
}

}  // namespace privsan
