// Preprocessing from Sections 4.1/4.2 of the paper.
//
// Condition 1 of Theorem 1: any query-url pair wholly owned by a single user
// (∃ s_k with c_ijk = c_ij) must get output count 0 — otherwise
// Pr[R(D) ∈ Ω1] = 1 and the δ bound is unachievable. The paper removes those
// "unique" pairs from the input before formulating any UMP, and |D| is
// recomputed over the retained pairs.
//
// RemoveUniquePairs produces a new SearchLog with unique pairs dropped, plus
// statistics. Users whose logs become empty are dropped from the output log
// (matching Table 3's 2500 -> 1980 user count).
#ifndef PRIVSAN_LOG_PREPROCESS_H_
#define PRIVSAN_LOG_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "log/search_log.h"

namespace privsan {

namespace serve {
class ThreadPool;
}  // namespace serve

struct PreprocessStats {
  size_t pairs_removed = 0;    // unique query-url pairs dropped
  size_t pairs_retained = 0;
  size_t users_dropped = 0;    // user logs emptied by the removal
  uint64_t clicks_removed = 0;
  uint64_t clicks_retained = 0;
};

struct PreprocessResult {
  SearchLog log;
  PreprocessStats stats;
};

// Returns true iff pair p of `log` is unique in the Condition-1 sense:
// exactly one user holds it (so that user's c_ijk equals c_ij).
bool IsUniquePair(const SearchLog& log, PairId p);

// Drops all unique pairs (Condition 1) and rebuilds the log.
//
// The shard-aware overload classifies pairs across `pool` (nullptr =
// serial); the rebuild itself stays serial because pair and user ids are
// assigned by insertion order. Output is bit-identical to the serial path.
PreprocessResult RemoveUniquePairs(const SearchLog& log);
PreprocessResult RemoveUniquePairs(const SearchLog& log,
                                   serve::ThreadPool* pool);

}  // namespace privsan

#endif  // PRIVSAN_LOG_PREPROCESS_H_
