#include "rng/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace privsan {

double SampleLaplace(Rng& rng, double scale) {
  PRIVSAN_CHECK(scale > 0.0);
  // u uniform on (-0.5, 0.5); inverse CDF: -b * sgn(u) * ln(1 - 2|u|).
  double u = rng.NextDouble() - 0.5;
  // Guard the measure-zero endpoint where log(0) would overflow.
  double magnitude = std::max(1.0 - 2.0 * std::abs(u), 1e-300);
  double draw = -scale * std::log(magnitude);
  return u < 0 ? -draw : draw;
}

Result<ZipfSampler> ZipfSampler::Build(size_t n, double exponent) {
  if (n == 0) {
    return Status::InvalidArgument("Zipf support must be non-empty");
  }
  if (!(exponent >= 0.0) || !std::isfinite(exponent)) {
    return Status::InvalidArgument("Zipf exponent must be finite and >= 0");
  }
  ZipfSampler sampler;
  sampler.cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    sampler.cdf_[r] = total;
  }
  for (double& c : sampler.cdf_) c /= total;
  sampler.cdf_.back() = 1.0;  // close the CDF exactly
  return sampler;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::ProbabilityOf(uint32_t rank) const {
  PRIVSAN_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

Result<std::vector<uint64_t>> SampleMultinomial(
    Rng& rng, uint64_t trials, const std::vector<double>& weights) {
  PRIVSAN_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Build(weights));
  std::vector<uint64_t> counts(weights.size(), 0);
  for (uint64_t t = 0; t < trials; ++t) {
    ++counts[table.Sample(rng)];
  }
  return counts;
}

}  // namespace privsan
