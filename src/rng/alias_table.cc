#include "rng/alias_table.h"

#include <cmath>

namespace privsan {

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("alias table needs at least one weight");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument("alias weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("alias weights must not all be zero");
  }

  const size_t n = weights.size();
  AliasTable table;
  table.prob_.assign(n, 0.0);
  table.alias_.assign(n, 0);

  // Scaled probabilities; columns with scaled < 1 are "small", others "large".
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    table.prob_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Residuals are exactly 1 up to FP rounding.
  for (uint32_t l : large) table.prob_[l] = 1.0;
  for (uint32_t s : small) table.prob_[s] = 1.0;
  return table;
}

uint32_t AliasTable::Sample(Rng& rng) const {
  const uint32_t column =
      static_cast<uint32_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

double AliasTable::ProbabilityOf(uint32_t i) const {
  // P(i) = (prob_i + sum over j of (1 - prob_j) where alias_j == i) / n.
  double p = prob_[i];
  for (size_t j = 0; j < prob_.size(); ++j) {
    if (alias_[j] == i && j != i) p += 1.0 - prob_[j];
  }
  return p / static_cast<double>(prob_.size());
}

}  // namespace privsan
