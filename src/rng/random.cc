#include "rng/random.h"

#include "util/logging.h"

namespace privsan {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PRIVSAN_CHECK(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  PRIVSAN_CHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::Discard(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) NextUint64();
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace privsan
