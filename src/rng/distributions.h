// Distribution samplers built on Rng:
//
//  * SampleLaplace      — Lap(b) noise for the end-to-end DP step (§4.2 of
//                         the paper: x*_ij += Lap(d/ε′)).
//  * ZipfSampler        — Zipf(s, n) over ranks {1..n}; used by the synthetic
//                         AOL-profile workload generator.
//  * SampleMultinomial  — n iid categorical draws via an alias table; the
//                         randomization core of Algorithm 1 step 2.
#ifndef PRIVSAN_RNG_DISTRIBUTIONS_H_
#define PRIVSAN_RNG_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "rng/alias_table.h"
#include "rng/random.h"
#include "util/result.h"

namespace privsan {

// Draws from the Laplace distribution with location 0 and scale `b` (> 0)
// via inverse-CDF on a symmetric uniform.
double SampleLaplace(Rng& rng, double scale);

// Zipf distribution over ranks {0, 1, ..., n-1} with exponent `s` >= 0:
// P(rank = r) proportional to 1 / (r+1)^s. s == 0 degenerates to uniform.
// Implemented with an explicit CDF + binary search (exact; n here is at most
// a few hundred thousand, so the O(n) table is cheap and draws are O(log n)).
class ZipfSampler {
 public:
  static Result<ZipfSampler> Build(size_t n, double exponent);

  uint32_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }
  double ProbabilityOf(uint32_t rank) const;

 private:
  ZipfSampler() = default;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1
};

// Draws a multinomial sample: `trials` iid draws from the categorical
// distribution proportional to `weights`, returned as per-category counts.
// Exactly the probability mass function of Equation 1 in the paper.
Result<std::vector<uint64_t>> SampleMultinomial(
    Rng& rng, uint64_t trials, const std::vector<double>& weights);

}  // namespace privsan

#endif  // PRIVSAN_RNG_DISTRIBUTIONS_H_
