// Walker–Vose alias method for O(1) sampling from a fixed discrete
// distribution. Construction is O(k); each draw costs one uniform double and
// one uniform integer. This is the sampling core of the paper's multinomial
// user-ID draw (Algorithm 1, step 2): each query-url pair's per-user count
// histogram becomes one alias table.
#ifndef PRIVSAN_RNG_ALIAS_TABLE_H_
#define PRIVSAN_RNG_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "rng/random.h"
#include "util/result.h"

namespace privsan {

class AliasTable {
 public:
  // Builds a table for the distribution proportional to `weights`.
  // Requirements: at least one weight, all weights finite and >= 0,
  // total weight > 0.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability weight[i] / total.
  uint32_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  // Exact probability of drawing index i as represented by the table
  // (useful for tests; equals weights[i]/total up to FP rounding).
  double ProbabilityOf(uint32_t i) const;

 private:
  AliasTable() = default;

  std::vector<double> prob_;     // acceptance probability of own column
  std::vector<uint32_t> alias_;  // fallback index
};

}  // namespace privsan

#endif  // PRIVSAN_RNG_ALIAS_TABLE_H_
