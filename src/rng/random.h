// Deterministic pseudo-random number generation for privsan.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed — including 0 — yields a well-mixed
// state. All randomized components in privsan take an explicit seed, which
// makes every test, example, and bench reproducible bit-for-bit.
#ifndef PRIVSAN_RNG_RANDOM_H_
#define PRIVSAN_RNG_RANDOM_H_

#include <array>
#include <cstdint>

namespace privsan {

// splitmix64 step; used for seeding and for cheap hash mixing.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, bound) without modulo bias. Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform on [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform on [lo, hi). Precondition: lo < hi.
  double NextDouble(double lo, double hi);

  // Bernoulli draw with success probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Advances the stream by `n` draws, as if NextUint64 were called n times.
  // This is what lets a consumer with a fixed draws-per-item schedule (the
  // synthetic log generator: exactly 3 draws per event) shard its stream:
  // copy a checkpointed Rng (the class is trivially copyable) and discard
  // the remaining draws up to the shard boundary, making the sharded
  // output bit-identical to the serial one.
  void Discard(uint64_t n);

  // Forks an independent generator; deterministic in (current state).
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace privsan

#endif  // PRIVSAN_RNG_RANDOM_H_
