// Per-tenant (ε, δ) privacy-budget accounting (ROADMAP item 2).
//
// The paper's guarantee is spent per *release*: every sanitized view a
// tenant computes from its log consumes part of a finite (ε, δ) budget,
// and once the budget is gone further releases silently void the
// guarantee. The accountant makes that spend explicit: the serve layer
// charges it on every non-cached Solve/Sweep/Sanitize (cache hits re-serve
// an already-released answer, so they are free), and the tenant receives a
// typed kBudgetExhausted refusal once the remaining ε would cross the
// configured floor.
//
// Two composition modes (selectable per tenant):
//
//   * basic      — sequential composition: ε and δ add up linearly;
//   * advanced   — the Dwork–Rothblum–Vadhan bound: for allocations
//                  {(ε_i, δ_i)} and a slack δ',
//                    ε_total = sqrt(2 ln(1/δ') · Σ ε_i²) + Σ ε_i(e^{ε_i}−1)
//                    δ_total = δ' + Σ δ_i,
//                  sub-linear in the number of queries once ε_i are small.
//
// The accountant is plain state — no clock, no locking. Callers pass
// timestamps in (the serve layer stamps wall-clock micros) and hold their
// tenant lock; Serialize/Deserialize round-trip the full allocation
// history so the spend survives snapshot/restore, eviction reload and
// router migration byte-exactly.
#ifndef PRIVSAN_STREAM_ACCOUNTANT_H_
#define PRIVSAN_STREAM_ACCOUNTANT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.h"

namespace privsan {
namespace stream {

enum class Composition : uint8_t {
  kBasic = 0,
  kAdvanced = 1,
};

// Returns kInvalidArgument for out-of-range values.
Result<Composition> CompositionFromString(const std::string& name);
const char* CompositionToString(Composition composition);

struct BudgetConfig {
  // Total ε the tenant may spend; 0 = unlimited (the accountant still
  // records history but never refuses).
  double max_epsilon = 0.0;
  // Total δ the tenant may spend; 0 = unlimited.
  double max_delta = 0.0;
  // Refusal floor: a charge is refused when it would leave less than this
  // much ε remaining. 0 = refuse only once the budget itself is exceeded.
  double min_remaining_epsilon = 0.0;
  Composition composition = Composition::kBasic;
  // The δ' slack of the advanced composition bound.
  double advanced_delta_slack = 1e-9;

  bool operator==(const BudgetConfig&) const = default;
};

// One recorded charge.
struct Allocation {
  uint64_t unix_micros = 0;
  double epsilon = 0.0;
  double delta = 0.0;
  std::string verb;  // what was charged ("solve", "sweep", "sanitize")

  bool operator==(const Allocation&) const = default;
};

class PrivacyAccountant {
 public:
  PrivacyAccountant() = default;
  explicit PrivacyAccountant(BudgetConfig config) : config_(config) {}

  // Charges (epsilon, delta) at `unix_micros`. Refuses with
  // kBudgetExhausted — recording nothing but the refusal count — when the
  // spend after this charge would leave RemainingEpsilon() below the floor
  // or push SpentDelta() past max_delta. A config with max_epsilon == 0
  // never refuses.
  Status Charge(double epsilon, double delta, const std::string& verb,
                uint64_t unix_micros);

  // Cumulative spend under the configured composition.
  double SpentEpsilon() const;
  double SpentDelta() const;
  // max_epsilon − SpentEpsilon(), clamped at 0; +inf when unlimited.
  double RemainingEpsilon() const;
  // Whether the next charge of (epsilon, delta) would be refused.
  bool WouldRefuse(double epsilon, double delta) const;

  bool enforced() const { return config_.max_epsilon > 0.0; }
  const BudgetConfig& config() const { return config_; }
  const std::vector<Allocation>& history() const { return history_; }
  uint64_t refusals() const { return refusals_; }

  // Full-fidelity round trip (config, history, refusal count). The
  // running sums are recomputed on read, so a deserialized accountant
  // reports bit-identical spend: the sums are re-accumulated in history
  // order, the same order Charge built them in.
  void Serialize(std::ostream& out) const;
  static Result<PrivacyAccountant> Deserialize(std::istream& in);

  bool operator==(const PrivacyAccountant& other) const {
    return config_ == other.config_ && history_ == other.history_ &&
           refusals_ == other.refusals_;
  }

 private:
  // Spend if the running sums were (sum_eps + ε, sum_eps_sq + ε², ...).
  double ComposedEpsilon(double sum_eps, double sum_eps_sq,
                         double sum_eps_growth) const;

  BudgetConfig config_;
  std::vector<Allocation> history_;
  uint64_t refusals_ = 0;
  // Running sums over history_ (re-derived by Deserialize).
  double sum_eps_ = 0.0;
  double sum_delta_ = 0.0;
  double sum_eps_sq_ = 0.0;
  double sum_eps_growth_ = 0.0;  // Σ ε_i·(e^{ε_i} − 1)
};

}  // namespace stream
}  // namespace privsan

#endif  // PRIVSAN_STREAM_ACCOUNTANT_H_
