// Retention windows over a streaming search log.
//
// A production log is a stream with retention obligations: a tenant keeps
// each user's clicks only while the user is inside the window, and retires
// them afterwards. WindowState tracks per-user last-seen timestamps (the
// serve layer observes them on every flush) and answers "who has aged
// out?" — the actual deletion is SanitizerSession::RemoveUsers, driven
// either explicitly (the EXPIRE verb) or continuously by the serve
// maintenance thread.
//
// Two policies:
//
//   * sliding  — the window is [now − span, now]; a user expires once
//                their last click is older than span;
//   * tumbling — time is cut into fixed [k·span, (k+1)·span) panes; every
//                user whose last click fell in a *previous* pane expires
//                when the pane turns over (all-at-once retirement).
//
// Timestamps are caller-defined uint64 units (the serve layer uses unix
// seconds; tests use logical ticks) — the state never reads a clock, which
// keeps expiry deterministic and replayable. Like the accountant, this is
// plain unlocked state serialized into tenant snapshots.
#ifndef PRIVSAN_STREAM_WINDOW_H_
#define PRIVSAN_STREAM_WINDOW_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace privsan {
namespace stream {

enum class WindowKind : uint8_t {
  kNone = 0,      // no retention: users never expire
  kSliding = 1,
  kTumbling = 2,
};

// Returns kInvalidArgument for unknown names.
Result<WindowKind> WindowKindFromString(const std::string& name);
const char* WindowKindToString(WindowKind kind);

struct WindowPolicy {
  WindowKind kind = WindowKind::kNone;
  // Window length in caller time units; 0 disables retention even for
  // sliding/tumbling kinds.
  uint64_t span = 0;

  bool active() const { return kind != WindowKind::kNone && span > 0; }
  bool operator==(const WindowPolicy&) const = default;
};

class WindowState {
 public:
  WindowState() = default;
  explicit WindowState(WindowPolicy policy) : policy_(policy) {}

  const WindowPolicy& policy() const { return policy_; }

  // Records that `user` was seen at `now` (monotonic per user: an older
  // observation never rolls a newer one back).
  void Observe(const std::string& user, uint64_t now);

  // Users whose last observation is strictly older than `cutoff`, sorted
  // by name (deterministic removal batches). Ignores the policy — this is
  // the explicit EXPIRE verb.
  std::vector<std::string> ExpiredBefore(uint64_t cutoff) const;

  // Users the policy retires at time `now`: sliding — last seen before
  // now − span; tumbling — last seen before the current pane's start.
  // Empty when the policy is inactive.
  std::vector<std::string> ExpiredAt(uint64_t now) const;

  // Drops tracking state for removed users.
  void Forget(const std::vector<std::string>& users);

  size_t tracked_users() const { return last_seen_.size(); }

  void Serialize(std::ostream& out) const;
  static Result<WindowState> Deserialize(std::istream& in);

  bool operator==(const WindowState& other) const {
    return policy_ == other.policy_ && last_seen_ == other.last_seen_;
  }

 private:
  WindowPolicy policy_;
  std::unordered_map<std::string, uint64_t> last_seen_;
};

}  // namespace stream
}  // namespace privsan

#endif  // PRIVSAN_STREAM_WINDOW_H_
