#include "stream/accountant.h"

#include <cmath>
#include <limits>

#include "util/binary_io.h"

namespace privsan {
namespace stream {

namespace {
// Absolute slack on the refusal comparisons so a budget sized as an exact
// multiple of the per-query ε admits the full multiple (the running sums
// accumulate rounding on the order of 1 ulp per charge).
constexpr double kTol = 1e-12;
// History counts are bounded like every other snapshot-borne count.
constexpr uint64_t kMaxHistory = 1ull << 26;
}  // namespace

Result<Composition> CompositionFromString(const std::string& name) {
  if (name == "basic") return Composition::kBasic;
  if (name == "advanced") return Composition::kAdvanced;
  return Status::InvalidArgument("unknown composition method: " + name);
}

const char* CompositionToString(Composition composition) {
  switch (composition) {
    case Composition::kBasic:
      return "basic";
    case Composition::kAdvanced:
      return "advanced";
  }
  return "unknown";
}

double PrivacyAccountant::ComposedEpsilon(double sum_eps, double sum_eps_sq,
                                          double sum_eps_growth) const {
  if (config_.composition == Composition::kBasic) return sum_eps;
  const double slack =
      config_.advanced_delta_slack > 0 ? config_.advanced_delta_slack : 1e-9;
  return std::sqrt(2.0 * std::log(1.0 / slack) * sum_eps_sq) +
         sum_eps_growth;
}

double PrivacyAccountant::SpentEpsilon() const {
  return ComposedEpsilon(sum_eps_, sum_eps_sq_, sum_eps_growth_);
}

double PrivacyAccountant::SpentDelta() const {
  if (history_.empty()) return 0.0;
  return config_.composition == Composition::kAdvanced
             ? sum_delta_ + config_.advanced_delta_slack
             : sum_delta_;
}

double PrivacyAccountant::RemainingEpsilon() const {
  if (!enforced()) return std::numeric_limits<double>::infinity();
  const double remaining = config_.max_epsilon - SpentEpsilon();
  return remaining > 0.0 ? remaining : 0.0;
}

bool PrivacyAccountant::WouldRefuse(double epsilon, double delta) const {
  if (!enforced()) return false;
  const double eps_after =
      ComposedEpsilon(sum_eps_ + epsilon, sum_eps_sq_ + epsilon * epsilon,
                      sum_eps_growth_ + epsilon * std::expm1(epsilon));
  if (config_.max_epsilon - eps_after <
      config_.min_remaining_epsilon - kTol) {
    return true;
  }
  if (config_.max_delta > 0.0) {
    double delta_after = sum_delta_ + delta;
    if (config_.composition == Composition::kAdvanced) {
      delta_after += config_.advanced_delta_slack;
    }
    if (delta_after > config_.max_delta + kTol) return true;
  }
  return false;
}

Status PrivacyAccountant::Charge(double epsilon, double delta,
                                 const std::string& verb,
                                 uint64_t unix_micros) {
  if (!(epsilon >= 0.0) || !(delta >= 0.0)) {
    return Status::InvalidArgument("negative or NaN privacy charge");
  }
  if (WouldRefuse(epsilon, delta)) {
    ++refusals_;
    return Status::BudgetExhausted(
        "privacy budget exhausted: spent epsilon " +
        std::to_string(SpentEpsilon()) + " of " +
        std::to_string(config_.max_epsilon) + " (" +
        CompositionToString(config_.composition) + " composition, floor " +
        std::to_string(config_.min_remaining_epsilon) + ")");
  }
  history_.push_back(Allocation{unix_micros, epsilon, delta, verb});
  sum_eps_ += epsilon;
  sum_delta_ += delta;
  sum_eps_sq_ += epsilon * epsilon;
  sum_eps_growth_ += epsilon * std::expm1(epsilon);
  return Status::OK();
}

void PrivacyAccountant::Serialize(std::ostream& out) const {
  binary_io::WriteScalar(out, config_.max_epsilon);
  binary_io::WriteScalar(out, config_.max_delta);
  binary_io::WriteScalar(out, config_.min_remaining_epsilon);
  binary_io::WriteScalar<uint8_t>(
      out, static_cast<uint8_t>(config_.composition));
  binary_io::WriteScalar(out, config_.advanced_delta_slack);
  binary_io::WriteScalar<uint64_t>(out, refusals_);
  binary_io::WriteScalar<uint64_t>(out, history_.size());
  for (const Allocation& allocation : history_) {
    binary_io::WriteScalar(out, allocation.unix_micros);
    binary_io::WriteScalar(out, allocation.epsilon);
    binary_io::WriteScalar(out, allocation.delta);
    binary_io::WriteString(out, allocation.verb);
  }
}

Result<PrivacyAccountant> PrivacyAccountant::Deserialize(std::istream& in) {
  PrivacyAccountant accountant;
  BudgetConfig& config = accountant.config_;
  PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &config.max_epsilon));
  PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &config.max_delta));
  PRIVSAN_RETURN_IF_ERROR(
      binary_io::ReadScalar(in, &config.min_remaining_epsilon));
  uint8_t composition = 0;
  PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &composition));
  if (composition > static_cast<uint8_t>(Composition::kAdvanced)) {
    return Status::IoError("accountant state corrupt: bad composition " +
                           std::to_string(composition));
  }
  config.composition = static_cast<Composition>(composition);
  PRIVSAN_RETURN_IF_ERROR(
      binary_io::ReadScalar(in, &config.advanced_delta_slack));
  PRIVSAN_RETURN_IF_ERROR(
      binary_io::ReadScalar(in, &accountant.refusals_));
  PRIVSAN_ASSIGN_OR_RETURN(const uint64_t count,
                           binary_io::ReadCount(in, kMaxHistory));
  accountant.history_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Allocation allocation;
    PRIVSAN_RETURN_IF_ERROR(
        binary_io::ReadScalar(in, &allocation.unix_micros));
    PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &allocation.epsilon));
    PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &allocation.delta));
    PRIVSAN_ASSIGN_OR_RETURN(allocation.verb, binary_io::ReadString(in));
    accountant.sum_eps_ += allocation.epsilon;
    accountant.sum_delta_ += allocation.delta;
    accountant.sum_eps_sq_ += allocation.epsilon * allocation.epsilon;
    accountant.sum_eps_growth_ +=
        allocation.epsilon * std::expm1(allocation.epsilon);
    accountant.history_.push_back(std::move(allocation));
  }
  return accountant;
}

}  // namespace stream
}  // namespace privsan
