#include "stream/window.h"

#include <algorithm>

#include "util/binary_io.h"

namespace privsan {
namespace stream {

namespace {
constexpr uint64_t kMaxTrackedUsers = 1ull << 26;
}  // namespace

Result<WindowKind> WindowKindFromString(const std::string& name) {
  if (name == "none") return WindowKind::kNone;
  if (name == "sliding") return WindowKind::kSliding;
  if (name == "tumbling") return WindowKind::kTumbling;
  return Status::InvalidArgument("unknown window kind: " + name);
}

const char* WindowKindToString(WindowKind kind) {
  switch (kind) {
    case WindowKind::kNone:
      return "none";
    case WindowKind::kSliding:
      return "sliding";
    case WindowKind::kTumbling:
      return "tumbling";
  }
  return "unknown";
}

void WindowState::Observe(const std::string& user, uint64_t now) {
  uint64_t& seen = last_seen_[user];
  seen = std::max(seen, now);
}

std::vector<std::string> WindowState::ExpiredBefore(uint64_t cutoff) const {
  std::vector<std::string> expired;
  for (const auto& [user, seen] : last_seen_) {
    if (seen < cutoff) expired.push_back(user);
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

std::vector<std::string> WindowState::ExpiredAt(uint64_t now) const {
  if (!policy_.active()) return {};
  uint64_t cutoff = 0;
  if (policy_.kind == WindowKind::kSliding) {
    cutoff = now > policy_.span ? now - policy_.span : 0;
  } else {
    cutoff = (now / policy_.span) * policy_.span;  // current pane's start
  }
  return ExpiredBefore(cutoff);
}

void WindowState::Forget(const std::vector<std::string>& users) {
  for (const std::string& user : users) last_seen_.erase(user);
}

void WindowState::Serialize(std::ostream& out) const {
  binary_io::WriteScalar<uint8_t>(out, static_cast<uint8_t>(policy_.kind));
  binary_io::WriteScalar<uint64_t>(out, policy_.span);
  binary_io::WriteScalar<uint64_t>(out, last_seen_.size());
  // Deterministic byte stream (snapshot diffing, byte-equivalence smokes):
  // serialize in sorted name order, not hash order.
  std::vector<const std::string*> names;
  names.reserve(last_seen_.size());
  for (const auto& [user, seen] : last_seen_) names.push_back(&user);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* name : names) {
    binary_io::WriteString(out, *name);
    binary_io::WriteScalar<uint64_t>(out, last_seen_.at(*name));
  }
}

Result<WindowState> WindowState::Deserialize(std::istream& in) {
  WindowState state;
  uint8_t kind = 0;
  PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &kind));
  if (kind > static_cast<uint8_t>(WindowKind::kTumbling)) {
    return Status::IoError("window state corrupt: bad kind " +
                           std::to_string(kind));
  }
  state.policy_.kind = static_cast<WindowKind>(kind);
  PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &state.policy_.span));
  PRIVSAN_ASSIGN_OR_RETURN(const uint64_t count,
                           binary_io::ReadCount(in, kMaxTrackedUsers));
  state.last_seen_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PRIVSAN_ASSIGN_OR_RETURN(std::string user, binary_io::ReadString(in));
    uint64_t seen = 0;
    PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &seen));
    state.last_seen_[std::move(user)] = seen;
  }
  return state;
}

}  // namespace stream
}  // namespace privsan
