// A fixed-size worker pool for the serve path.
//
// The solver is no longer the only hot spot at full scale: per-user DP-row
// construction and Condition-1 preprocessing are embarrassingly parallel
// over users / pairs, and a long-running SanitizerService hosts many
// tenants whose flushes overlap. One shared ThreadPool backs all of them.
//
// Design constraints, in order:
//
//   * Determinism. ParallelFor partitions [0, n) into fixed contiguous
//     shards; which worker runs a shard never affects where its results
//     land, so a sharded computation is bit-identical to the serial one.
//   * No deadlocks under nesting. The calling thread participates in its
//     own loop (it claims shards like any worker), so ParallelFor makes
//     progress even when every worker is busy with other tenants' work.
//   * Concurrency-safe. Any number of threads may call ParallelFor / Submit
//     on one pool concurrently; each loop tracks its own completion.
//
// Tasks must not throw — exceptions never cross privsan API boundaries.
#ifndef PRIVSAN_SERVE_THREAD_POOL_H_
#define PRIVSAN_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace privsan {
namespace serve {

class ThreadPool {
 public:
  // num_threads <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  // Runs body(begin, end) over a fixed partition of [0, n) and blocks until
  // every shard finished. The calling thread claims shards too. `body` must
  // be safe to invoke concurrently on disjoint ranges.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
};

// Serial fallback: body(0, n) when pool is nullptr, sharded otherwise. The
// shard-aware entry points (DpConstraintSystem::BuildRows, the parallel
// RemoveUniquePairs) take an optional pool through this helper.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_THREAD_POOL_H_
