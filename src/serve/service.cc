#include "serve/service.h"

#include <cstdint>
#include <cstring>
#include <utility>

#include "serve/snapshot.h"

namespace privsan {
namespace serve {

namespace {

// Canonical cache key: the exact solver inputs that pick a solution on a
// fixed log state. Doubles are keyed by their bit patterns — two budgets
// are "the same query" only when they are bitwise equal.
std::string CacheKey(UtilityObjective objective, const UmpQuery& query) {
  uint64_t eps_bits = 0, delta_bits = 0;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&eps_bits, &query.privacy.epsilon, sizeof(double));
  std::memcpy(&delta_bits, &query.privacy.delta, sizeof(double));
  std::string key = std::to_string(static_cast<int>(objective));
  key += '|';
  key += std::to_string(eps_bits);
  key += '|';
  key += std::to_string(delta_bits);
  key += '|';
  key += std::to_string(query.output_size);
  key += '|';
  key += query.solver.has_value()
             ? std::to_string(static_cast<int>(*query.solver))
             : std::string("-");
  return key;
}

}  // namespace

SanitizerService::SanitizerService(ServiceOptions options)
    : options_(std::move(options)), pool_(options_.num_threads) {}

SessionOptions SanitizerService::WithPool(SessionOptions options) {
  options.pool = &pool_;
  return options;
}

Status SanitizerService::CreateTenant(const std::string& tenant,
                                      const SearchLog& initial) {
  return CreateTenant(tenant, initial, options_.session);
}

Status SanitizerService::CreateTenant(const std::string& tenant,
                                      const SearchLog& initial,
                                      SessionOptions options) {
  // Fail duplicate names before the expensive preprocess + row build; the
  // registry re-checks under its lock, so a racing create still loses
  // cleanly there.
  if (manager_.Has(tenant)) {
    return Status::FailedPrecondition("tenant already exists: " + tenant);
  }
  PRIVSAN_ASSIGN_OR_RETURN(
      SanitizerSession session,
      SanitizerSession::Create(initial, WithPool(std::move(options))));
  PRIVSAN_RETURN_IF_ERROR(
      manager_.Create(tenant, std::move(session)).status());
  return Status::OK();
}

Status SanitizerService::DropTenant(const std::string& tenant) {
  return manager_.Remove(tenant);
}

std::vector<std::string> SanitizerService::Tenants() const {
  return manager_.Names();
}

Status SanitizerService::Append(const std::string& tenant,
                                const SearchLog& logs) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  t->pending.push_back(logs);
  ++t->stats.appends_enqueued;
  return Status::OK();
}

Status SanitizerService::FlushLocked(Tenant& tenant) {
  if (tenant.pending.empty()) return Status::OK();
  // Coalesce the whole queue into one log: K queued appends become a
  // single merge + incremental re-preprocess + row patch + basis remap.
  SearchLogBuilder builder;
  for (const SearchLog& log : tenant.pending) builder.AddAll(log);
  const size_t coalesced = tenant.pending.size();
  tenant.pending.clear();
  PRIVSAN_RETURN_IF_ERROR(tenant.session.AppendUsers(builder.Build()));
  ++tenant.stats.flushes;
  tenant.stats.appends_coalesced += coalesced;
  tenant.stats.rows_copied = tenant.session.last_append_stats().rows_copied;
  tenant.stats.rows_rebuilt =
      tenant.session.last_append_stats().rows_rebuilt;
  // The log changed: every cached solution is stale.
  tenant.cache.clear();
  tenant.cache_order.clear();
  return Status::OK();
}

Status SanitizerService::Flush(const std::string& tenant) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  return FlushLocked(*t);
}

Result<UmpSolution> SanitizerService::Solve(const std::string& tenant,
                                            UtilityObjective objective,
                                            const UmpQuery& query) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  PRIVSAN_RETURN_IF_ERROR(FlushLocked(*t));

  const bool cache_enabled = options_.result_cache_capacity > 0;
  std::string key;
  if (cache_enabled) {
    key = CacheKey(objective, query);
    auto it = t->cache.find(key);
    if (it != t->cache.end()) {
      ++t->stats.cache_hits;
      return it->second;
    }
    ++t->stats.cache_misses;
  }

  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution,
                           t->session.Solve(objective, query));
  ++t->stats.solves;
  t->stats.repair_aborted +=
      static_cast<uint64_t>(solution.stats.repair_aborted);
  if (cache_enabled) {
    if (t->cache_order.size() >= options_.result_cache_capacity) {
      t->cache.erase(t->cache_order.front());
      t->cache_order.erase(t->cache_order.begin());
    }
    t->cache.emplace(key, solution);
    t->cache_order.push_back(std::move(key));
  }
  return solution;
}

Result<SweepResult> SanitizerService::Sweep(const std::string& tenant,
                                            UtilityObjective objective,
                                            const std::vector<UmpQuery>& grid,
                                            const SweepOptions& sweep) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  PRIVSAN_RETURN_IF_ERROR(FlushLocked(*t));
  PRIVSAN_ASSIGN_OR_RETURN(SweepResult result,
                           t->session.SweepBudgets(objective, grid, sweep));
  t->stats.solves += result.cells.size();
  t->stats.repair_aborted += static_cast<uint64_t>(result.repair_aborted);
  return result;
}

Result<SanitizeReport> SanitizerService::Sanitize(
    const std::string& tenant, const PrivacyParams& privacy) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  PRIVSAN_RETURN_IF_ERROR(FlushLocked(*t));
  PRIVSAN_ASSIGN_OR_RETURN(SanitizeReport report,
                           t->session.Sanitize(privacy));
  ++t->stats.solves;
  return report;
}

Result<TenantStats> SanitizerService::Stats(const std::string& tenant) const {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  return t->stats;
}

Status SanitizerService::SaveSnapshot(const std::string& tenant,
                                      const std::string& path) {
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> t, manager_.Get(tenant));
  std::lock_guard<std::mutex> lock(t->mu);
  // Queued appends are part of the tenant's logical state — land them
  // before persisting.
  PRIVSAN_RETURN_IF_ERROR(FlushLocked(*t));
  return serve::SaveSnapshot(t->session, path);
}

Status SanitizerService::RestoreTenant(const std::string& tenant,
                                       const std::string& path) {
  return RestoreTenant(tenant, path, options_.session);
}

Status SanitizerService::RestoreTenant(const std::string& tenant,
                                       const std::string& path,
                                       SessionOptions options) {
  if (manager_.Has(tenant)) {
    return Status::FailedPrecondition("tenant already exists: " + tenant);
  }
  PRIVSAN_ASSIGN_OR_RETURN(
      SanitizerSession session,
      RestoreSession(path, WithPool(std::move(options))));
  PRIVSAN_RETURN_IF_ERROR(
      manager_.Create(tenant, std::move(session)).status());
  return Status::OK();
}

}  // namespace serve
}  // namespace privsan
