#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "serve/snapshot.h"
#include "util/timer.h"

namespace privsan {
namespace serve {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

uint64_t UnixMicrosNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixSecondsNow() { return UnixMicrosNow() / 1000000; }

// The retention cutoff the tenant's window policy implies at `now`:
// sliding windows keep the trailing `span` seconds, tumbling windows
// keep the current pane. 0 (nothing expires) when the policy is off.
uint64_t PolicyCutoff(const stream::WindowPolicy& policy, uint64_t now) {
  if (!policy.active()) return 0;
  if (policy.kind == stream::WindowKind::kSliding) {
    return now > policy.span ? now - policy.span : 0;
  }
  return (now / policy.span) * policy.span;  // tumbling pane start
}

// Canonical cache key: the exact solver inputs that pick a solution on a
// fixed log state. Doubles are keyed by their bit patterns — two budgets
// are "the same query" only when they are bitwise equal.
std::string CacheKey(UtilityObjective objective, const UmpQuery& query) {
  uint64_t eps_bits = 0, delta_bits = 0;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&eps_bits, &query.privacy.epsilon, sizeof(double));
  std::memcpy(&delta_bits, &query.privacy.delta, sizeof(double));
  std::string key = std::to_string(static_cast<int>(objective));
  key += '|';
  key += std::to_string(eps_bits);
  key += '|';
  key += std::to_string(delta_bits);
  key += '|';
  key += std::to_string(query.output_size);
  key += '|';
  key += query.solver.has_value()
             ? std::to_string(static_cast<int>(*query.solver))
             : std::string("-");
  return key;
}

uint64_t EstimateCacheEntryBytes(const std::string& key,
                                 const UmpSolution& solution) {
  return key.size() + solution.x.capacity() * sizeof(uint64_t) +
         solution.x_relaxed.capacity() * sizeof(double) +
         solution.basis.basic.capacity() * sizeof(int) +
         solution.basis.state.capacity() +
         solution.frequent_pairs.capacity() * sizeof(PairId) +
         sizeof(UmpSolution) + 96;  // map-node + bookkeeping overhead
}

std::future<ServeResponse> ImmediateResponse(Status status) {
  std::promise<ServeResponse> promise;
  promise.set_value(ServeResponse{std::move(status), {}});
  return promise.get_future();
}

// Delivers a response through whichever channel the job's Submit chose:
// the callback (network front-end) or the promise (future-based callers).
void Finish(ServeJob& job, ServeResponse response) {
  if (job.done) {
    job.done(std::move(response));
  } else {
    job.promise->set_value(std::move(response));
  }
}

// The lifecycle gate every queued job passes before touching the session.
// Does NOT reload an evicted session — that is EnsureLive's job, so pure
// bookkeeping requests (Append, Stats, Drop) leave cold tenants cold.
Status CheckLifecycle(const Tenant& tenant) {
  if (tenant.dropped) {
    return Status::NotFound("no such tenant: " + tenant.name);
  }
  if (!tenant.initialized) {
    // Jobs are FIFO behind the create/restore job; reaching here means the
    // queue discipline broke.
    return Status::Internal("tenant not initialized: " + tenant.name);
  }
  if (!tenant.init_error.ok()) return tenant.init_error;
  return Status::OK();
}

// Folds one solve/sweep's hyper-sparse kernel counters into the tenant's:
// counts add, the mean reach (stored in permille so the Prometheus export
// table stays all-uint64) re-weights by solve count. Caller holds cmu.
void MergeSparseKernelStats(TenantStats& stats, uint64_t solves,
                            uint64_t hits, double mean_reach_fraction) {
  const double prev_sum = static_cast<double>(stats.mean_reach_permille) /
                          1000.0 * static_cast<double>(stats.sparse_solves);
  stats.sparse_solves += solves;
  stats.sparse_ftran_hits += hits;
  const double total =
      prev_sum + mean_reach_fraction * static_cast<double>(solves);
  stats.mean_reach_permille =
      stats.sparse_solves > 0
          ? static_cast<uint64_t>(
                total / static_cast<double>(stats.sparse_solves) * 1000.0 +
                0.5)
          : 0;
}

}  // namespace

SanitizerService::SanitizerService(ServiceOptions options)
    : options_(std::move(options)),
      slow_log_(options_.slow_request_threshold_ms,
                options_.slow_log_capacity),
      pool_(std::make_unique<ThreadPool>(options_.num_threads)) {
  RegisterMetrics();
  if (options_.maintenance_interval_ms > 0) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

SanitizerService::~SanitizerService() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    stopping_ = true;
  }
  maintenance_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  // Drain the workers: they finish every queued job — resolving all
  // outstanding futures — before joining. Only then is it safe to sweep
  // the eviction spill files (a queued job may still reload from one):
  // they hold the tenants' raw input logs and must not outlive the
  // service that is supposed to be protecting them.
  pool_.reset();
  for (const std::shared_ptr<Tenant>& tenant : manager_.All()) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->evicted) std::remove(tenant->spill_path.c_str());
  }
}

SessionOptions SanitizerService::WithPool(SessionOptions options) {
  options.pool = pool_.get();
  return options;
}

std::string SanitizerService::SpillPath(const std::string& tenant) const {
  std::string safe;
  safe.reserve(tenant.size());
  for (char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '_';
    safe += ok ? c : '_';
  }
  // The hash keeps sanitized collisions ("a/b" vs "a_b") apart.
  const uint64_t h = std::hash<std::string>{}(tenant);
  return options_.spill_directory + "/privsan_spill_" + safe + "_" +
         std::to_string(h) + ".snap";
}

// --- Submission ------------------------------------------------------------

std::future<ServeResponse> SanitizerService::Submit(ServeRequest request) {
  return SubmitInternal(std::move(request), nullptr);
}

void SanitizerService::Submit(ServeRequest request,
                              std::function<void(ServeResponse)> done) {
  SubmitInternal(std::move(request), std::move(done));
}

std::future<ServeResponse> SanitizerService::SubmitInternal(
    ServeRequest request, std::function<void(ServeResponse)> done) {
  // The tenant-less observability verbs answer inline: a scrape or a
  // slow-log dump must never wait behind a sweep on some tenant's queue.
  if (std::holds_alternative<MetricsRequest>(request) ||
      std::holds_alternative<SlowLogRequest>(request)) {
    ServeResponse response{Status::OK(), {}};
    if (std::holds_alternative<MetricsRequest>(request)) {
      response.payload = MetricsText{RenderMetrics()};
    } else {
      const auto& dump = std::get<SlowLogRequest>(request);
      SlowLogDump payload;
      payload.records = slow_log_.Snapshot(dump.limit);
      payload.dropped = slow_log_.dropped();
      payload.threshold_ms = slow_log_.threshold_ms();
      response.payload = std::move(payload);
    }
    if (done) {
      done(std::move(response));
      return {};
    }
    std::promise<ServeResponse> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
  }
  // Create/Restore register the name synchronously so later requests in a
  // pipelined burst find the tenant and queue FIFO behind the construction
  // job.
  const bool creates =
      std::holds_alternative<CreateTenantRequest>(request) ||
      std::holds_alternative<RestoreTenantRequest>(request);
  Result<std::shared_ptr<Tenant>> tenant =
      creates ? manager_.Create(RequestTenant(request))
              : manager_.Get(RequestTenant(request));
  if (!tenant.ok()) {
    if (done) {
      done(ServeResponse{tenant.status(), {}});
      return {};
    }
    return ImmediateResponse(tenant.status());
  }
  return Enqueue(*tenant, std::move(request), /*maintenance=*/false,
                 std::move(done));
}

bool SanitizerService::FastEligible(Tenant& tenant,
                                    const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(tenant.cmu);
  if (!tenant.fast_ready) return false;
  if (std::holds_alternative<StatsRequest>(request)) return true;
  if (const auto* solve = std::get_if<SolveRequest>(&request)) {
    // Pending appends make a cached solution stale-in-flight (the heavy
    // lane flushes before solving); a miss has real work to do. Both take
    // the heavy lane.
    return !tenant.fast_has_pending &&
           tenant.cache.count(CacheKey(solve->objective, solve->query)) > 0;
  }
  return false;
}

std::future<ServeResponse> SanitizerService::Enqueue(
    const std::shared_ptr<Tenant>& tenant, ServeRequest request,
    bool maintenance, std::function<void(ServeResponse)> done) {
  ServeJob job;
  job.request = std::move(request);
  job.done = std::move(done);
  job.maintenance = maintenance;
  job.enqueued_at = std::chrono::steady_clock::now();
  std::future<ServeResponse> future;
  if (!job.done) {
    job.promise = std::make_shared<std::promise<ServeResponse>>();
    future = job.promise->get_future();
  }
  // Fast-lane routing decides before admission: fast jobs answer from
  // cache/counter state in microseconds, so capping the heavy backlog must
  // not reject them.
  const bool fast = !maintenance && options_.fast_lane &&
                    FastEligible(*tenant, job.request);
  bool start = false;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(tenant->qmu);
    if (!maintenance) tenant->last_access = std::chrono::steady_clock::now();
    if (fast) {
      tenant->fast_jobs.push_back(std::move(job));
      if (!tenant->fast_draining) {
        tenant->fast_draining = true;
        start = true;
      }
    } else if (options_.max_queue_depth > 0 && !maintenance &&
               !std::holds_alternative<DropTenantRequest>(job.request) &&
               tenant->jobs.size() >= options_.max_queue_depth) {
      // Admission control. Maintenance jobs are exempt (background flushes
      // shrink the backlog) and so is DropTenant (an operator must always
      // be able to drop a flooded tenant).
      rejected = true;
    } else {
      tenant->jobs.push_back(std::move(job));
      if (!tenant->draining) {
        tenant->draining = true;
        start = true;
      }
    }
  }
  if (rejected) {
    {
      std::lock_guard<std::mutex> lock(tenant->cmu);
      ++tenant->stats.admission_rejected;
    }
    Finish(job, ServeResponse{Status::ResourceExhausted(
                                  "tenant queue full: " + tenant->name),
                              {}});
    return future;
  }
  if (start) {
    if (fast) {
      pool_->Submit([this, tenant] { DrainFastQueue(tenant); });
    } else {
      pool_->Submit([this, tenant] { DrainQueue(tenant); });
    }
  }
  return future;
}

void SanitizerService::DrainQueue(std::shared_ptr<Tenant> tenant) {
  while (true) {
    ServeJob job;
    {
      std::lock_guard<std::mutex> lock(tenant->qmu);
      if (tenant->jobs.empty()) {
        tenant->draining = false;
        return;
      }
      job = std::move(tenant->jobs.front());
      tenant->jobs.pop_front();
    }
    obs::RequestTrace trace;
    trace.queue_ms = ElapsedMs(job.enqueued_at);
    const auto exec_start = std::chrono::steady_clock::now();
    ServeResponse response;
    {
      std::lock_guard<std::mutex> lock(tenant->mu);
      response = Execute(*tenant, job.request, job.maintenance, &trace);
    }
    if (job.maintenance) {
      std::lock_guard<std::mutex> lock(tenant->qmu);
      tenant->flush_scheduled = false;
    }
    const double total_ms = trace.queue_ms + ElapsedMs(exec_start);
    RecordRequest(job.request.index(), tenant->name, response.status,
                  total_ms, trace);
    Finish(job, std::move(response));
  }
}

void SanitizerService::DrainFastQueue(std::shared_ptr<Tenant> tenant) {
  while (true) {
    ServeJob job;
    {
      std::lock_guard<std::mutex> lock(tenant->qmu);
      if (tenant->fast_jobs.empty()) {
        tenant->fast_draining = false;
        return;
      }
      job = std::move(tenant->fast_jobs.front());
      tenant->fast_jobs.pop_front();
    }
    obs::RequestTrace trace;
    trace.queue_ms = ElapsedMs(job.enqueued_at);
    const auto exec_start = std::chrono::steady_clock::now();
    ServeResponse response;
    bool requeue = false;
    {
      std::lock_guard<std::mutex> lock(tenant->cmu);
      if (!tenant->fast_gate.ok()) {
        response = {tenant->fast_gate, {}};
      } else if (std::get_if<StatsRequest>(&job.request) != nullptr) {
        ++tenant->stats.fast_lane_hits;
        response = {Status::OK(), tenant->stats};
      } else if (auto* solve = std::get_if<SolveRequest>(&job.request)) {
        auto it = tenant->cache.find(CacheKey(solve->objective, solve->query));
        if (it != tenant->cache.end() && !tenant->fast_has_pending) {
          ++tenant->stats.cache_hits;
          ++tenant->stats.fast_lane_hits;
          response = {Status::OK(), it->second};
        } else {
          // Lost the race with a flush/append since submit: the cached
          // result is gone or stale. Fall back to the heavy lane.
          requeue = true;
        }
      } else {
        response = {Status::Internal("non-fast job on fast lane"), {}};
      }
    }
    if (requeue) {
      // Already admitted once — push straight onto the heavy queue. The
      // job keeps its original enqueued_at, so its eventual trace charges
      // both waits to the queue stage; it is recorded on the heavy lane.
      bool start = false;
      {
        std::lock_guard<std::mutex> lock(tenant->qmu);
        tenant->jobs.push_back(std::move(job));
        if (!tenant->draining) {
          tenant->draining = true;
          start = true;
        }
      }
      if (start) {
        pool_->Submit([this, tenant] { DrainQueue(tenant); });
      }
      continue;
    }
    // The fast lane is one cache/counter probe — charge it to the
    // cache-lookup stage.
    trace.cache_ms = ElapsedMs(exec_start);
    RecordRequest(job.request.index(), tenant->name, response.status,
                  trace.queue_ms + trace.cache_ms, trace);
    Finish(job, std::move(response));
  }
}

// --- Execution (under tenant.mu) -------------------------------------------

Status SanitizerService::EnsureLive(Tenant& tenant) {
  PRIVSAN_RETURN_IF_ERROR(CheckLifecycle(tenant));
  if (tenant.session != nullptr) return Status::OK();
  if (!tenant.evicted) {
    return Status::Internal("tenant has no live session: " + tenant.name);
  }
  // Transparent reload: the eviction snapshot stores the preprocessed log,
  // DP rows and last optimal bases, so the tenant resumes warm.
  Result<SanitizerSession> restored =
      RestoreSession(tenant.spill_path, tenant.session_options);
  if (!restored.ok()) return restored.status();
  tenant.session = std::make_unique<SanitizerSession>(std::move(*restored));
  std::remove(tenant.spill_path.c_str());
  tenant.spill_path.clear();
  tenant.evicted = false;
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    ++tenant.stats.reloads;
  }
  RefreshResidentBytes(tenant);
  return Status::OK();
}

void SanitizerService::InvalidateCache(Tenant& tenant) {
  std::lock_guard<std::mutex> lock(tenant.cmu);
  tenant.cache.clear();
  tenant.cache_order.clear();
  tenant.cache_bytes = 0;
}

void SanitizerService::RefreshResidentBytes(Tenant& tenant) {
  // Pending appends count too: a burst parked in the queue (especially on
  // an evicted tenant, which Append deliberately leaves cold) is real
  // memory the budget must see. Such tenants are not directly evictable,
  // but the depth/age flush lands the queue and makes them evictable on a
  // following tick.
  const uint64_t session_bytes =
      tenant.session != nullptr ? tenant.session->ResidentBytes() : 0;
  std::lock_guard<std::mutex> lock(tenant.cmu);
  tenant.stats.resident_bytes =
      session_bytes + tenant.cache_bytes + tenant.pending_bytes;
}

Status SanitizerService::FlushLocked(Tenant& tenant,
                                     obs::RequestTrace* trace) {
  if (tenant.pending.empty()) return Status::OK();
  const auto flush_start = std::chrono::steady_clock::now();
  struct StageGuard {
    std::chrono::steady_clock::time_point start;
    obs::RequestTrace* trace;
    ~StageGuard() {
      if (trace != nullptr) trace->flush_ms += ElapsedMs(start);
    }
  } guard{flush_start, trace};
  // Coalesce the whole queue into one log: K queued appends become a
  // single merge + incremental re-preprocess + row patch + basis remap.
  SearchLogBuilder builder;
  for (const SearchLog& log : tenant.pending) builder.AddAll(log);
  const size_t coalesced = tenant.pending.size();
  tenant.pending.clear();
  tenant.pending_bytes = 0;
  {
    // Landing the queue un-stales cached solves for the fast lane even if
    // the append itself fails below — the pending queue is empty either
    // way, and the cache is invalidated right after.
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.fast_has_pending = false;
  }
  const SearchLog batch = builder.Build();
  // Feed the retention window before the append lands: every user in this
  // flush was active "now", whether new or re-appearing.
  const uint64_t now_secs = UnixSecondsNow();
  for (UserId u = 0; u < batch.num_users(); ++u) {
    tenant.window.Observe(batch.user_name(u), now_secs);
  }
  PRIVSAN_RETURN_IF_ERROR(tenant.session->AppendUsers(batch));
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    ++tenant.stats.flushes;
    tenant.stats.appends_coalesced += coalesced;
    tenant.stats.rows_copied =
        tenant.session->last_append_stats().rows_copied;
    tenant.stats.rows_rebuilt =
        tenant.session->last_append_stats().rows_rebuilt;
  }
  // The log changed: every cached solution is stale.
  InvalidateCache(tenant);
  RefreshResidentBytes(tenant);
  return Status::OK();
}

ServeResponse SanitizerService::Execute(Tenant& tenant, ServeRequest& request,
                                        bool maintenance,
                                        obs::RequestTrace* trace) {
  if (auto* create = std::get_if<CreateTenantRequest>(&request)) {
    return ExecuteCreate(tenant, *create);
  }
  if (auto* restore = std::get_if<RestoreTenantRequest>(&request)) {
    return ExecuteRestore(tenant, *restore);
  }

  if (auto* append = std::get_if<AppendRequest>(&request)) {
    if (Status gate = CheckLifecycle(tenant); !gate.ok()) return {gate, {}};
    if (tenant.pending.empty()) {
      tenant.oldest_pending = std::chrono::steady_clock::now();
    }
    tenant.pending_bytes += append->logs.ResidentBytes();
    tenant.pending.push_back(std::move(append->logs));
    {
      std::lock_guard<std::mutex> lock(tenant.cmu);
      ++tenant.stats.appends_enqueued;
      tenant.fast_has_pending = true;
    }
    RefreshResidentBytes(tenant);
    return {Status::OK(), {}};
  }

  if (std::get_if<FlushRequest>(&request) != nullptr) {
    // Whether this flush actually landed appends decides the maintenance
    // counter below; the queue can only change under mu, which we hold.
    const bool had_pending = !tenant.pending.empty();
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    // A maintenance-initiated job that actually landed appends is what the
    // background-flusher counter measures (DrainQueue owns the flag reset).
    if (maintenance && had_pending) {
      {
        std::lock_guard<std::mutex> lock(tenant.cmu);
        ++tenant.stats.maintenance_flushes;
      }
      // Only maintenance flushes prewarm and refresh: this work is an
      // optimization precisely because it runs off the query path — an
      // inline pre-solve flush must not pay model builds for objectives
      // the pending solve does not need.
      //
      // Rebuild the solver models the append invalidated, then re-solve
      // the last served query (hot-query refresh): the flush-invalidated
      // cache entry is repopulated and the remapped basis re-optimized
      // before the next client solve. Best-effort — a failure leaves the
      // lazy solve path intact.
      (void)tenant.session->PrewarmProblems();
      if (options_.refresh_hot_query_after_flush &&
          tenant.last_solve_query.has_value()) {
        const auto [objective, query] = *tenant.last_solve_query;
        if (ExecuteSolve(tenant, objective, query, nullptr,
                         /*charge=*/false)
                .ok()) {
          std::lock_guard<std::mutex> lock(tenant.cmu);
          ++tenant.stats.refresh_solves;
        }
      }
      RefreshResidentBytes(tenant);
    }
    return {Status::OK(), {}};
  }

  if (auto* solve = std::get_if<SolveRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    ServeResponse response =
        ExecuteSolve(tenant, solve->objective, solve->query, trace);
    // Only successful solves become the hot-query-refresh target — a
    // failing query must not be retried after every background flush.
    if (response.ok()) {
      tenant.last_solve_query = {solve->objective, solve->query};
    }
    return response;
  }

  if (auto* sweep = std::get_if<SweepRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    // Every grid cell is its own release: bill each before solving. A
    // refusal mid-grid keeps the earlier charges (conservative — the
    // accountant never undercounts) and solves nothing.
    for (const UmpQuery& cell : sweep->grid) {
      if (Status billed = ChargeBudget(tenant, cell.privacy.epsilon,
                                       cell.privacy.delta, "Sweep");
          !billed.ok()) {
        return {billed, {}};
      }
    }
    const auto solve_start = std::chrono::steady_clock::now();
    Result<SweepResult> result = tenant.session->SweepBudgets(
        sweep->objective, sweep->grid, sweep->sweep);
    if (trace != nullptr) trace->solve_ms += ElapsedMs(solve_start);
    if (!result.ok()) return {result.status(), {}};
    {
      std::lock_guard<std::mutex> lock(tenant.cmu);
      tenant.stats.solves += result->cells.size();
      tenant.stats.repair_aborted +=
          static_cast<uint64_t>(result->repair_aborted);
      for (const UmpSolution& cell : result->cells) {
        tenant.stats.refactorizations +=
            static_cast<uint64_t>(cell.stats.refactorizations);
        if (trace != nullptr) {
          trace->iterations +=
              static_cast<uint64_t>(cell.stats.simplex_iterations);
          trace->repair_pivots +=
              static_cast<uint64_t>(cell.stats.dual_iterations);
        }
      }
      tenant.stats.factor_nnz =
          std::max(tenant.stats.factor_nnz,
                   static_cast<uint64_t>(result->factor_nnz));
      tenant.stats.max_update_run =
          std::max(tenant.stats.max_update_run,
                   static_cast<uint64_t>(result->max_update_run));
      MergeSparseKernelStats(tenant.stats, result->sparse_solves,
                             result->sparse_ftran_hits,
                             result->mean_reach_fraction);
    }
    RefreshResidentBytes(tenant);
    return {Status::OK(), std::move(*result)};
  }

  if (auto* sanitize = std::get_if<SanitizeRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    if (Status billed = ChargeBudget(tenant, sanitize->privacy.epsilon,
                                     sanitize->privacy.delta, "Sanitize");
        !billed.ok()) {
      return {billed, {}};
    }
    const auto solve_start = std::chrono::steady_clock::now();
    Result<SanitizeReport> report =
        tenant.session->Sanitize(sanitize->privacy);
    if (trace != nullptr) trace->solve_ms += ElapsedMs(solve_start);
    if (!report.ok()) return {report.status(), {}};
    {
      std::lock_guard<std::mutex> lock(tenant.cmu);
      ++tenant.stats.solves;
    }
    RefreshResidentBytes(tenant);
    return {Status::OK(), std::move(*report)};
  }

  if (std::get_if<StatsRequest>(&request) != nullptr) {
    // Stats never reloads an evicted tenant — monitoring must not defeat
    // the memory budget.
    if (Status gate = CheckLifecycle(tenant); !gate.ok()) return {gate, {}};
    std::lock_guard<std::mutex> lock(tenant.cmu);
    return {Status::OK(), tenant.stats};
  }

  if (auto* save = std::get_if<SaveSnapshotRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    // Queued appends are part of the tenant's logical state — land them
    // before persisting.
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    const TenantStreamState stream_state{tenant.accountant, tenant.window};
    return {serve::SaveSnapshot(*tenant.session, save->path, &stream_state),
            {}};
  }

  if (std::get_if<DropTenantRequest>(&request) != nullptr) {
    if (tenant.dropped) {
      return {Status::NotFound("no such tenant: " + tenant.name), {}};
    }
    if (tenant.evicted) std::remove(tenant.spill_path.c_str());
    tenant.session.reset();
    tenant.evicted = false;
    tenant.dropped = true;
    tenant.pending.clear();
    tenant.pending_bytes = 0;
    {
      // Close the fast lane: jobs already queued there answer NotFound.
      std::lock_guard<std::mutex> lock(tenant.cmu);
      tenant.fast_ready = false;
      tenant.fast_gate = Status::NotFound("no such tenant: " + tenant.name);
      tenant.fast_has_pending = false;
    }
    InvalidateCache(tenant);
    RefreshResidentBytes(tenant);
    return {manager_.Remove(tenant.name), {}};
  }

  if (auto* remove = std::get_if<RemoveUsersRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    return {ExecuteRemove(tenant, remove->users, trace), {}};
  }

  if (auto* expire = std::get_if<ExpireWindowRequest>(&request)) {
    if (Status live = EnsureLive(tenant); !live.ok()) return {live, {}};
    // Land queued appends first so a user whose last activity is still in
    // the pending queue is observed before the expiry decision.
    if (Status flushed = FlushLocked(tenant, trace); !flushed.ok()) {
      return {flushed, {}};
    }
    const std::vector<std::string> expired =
        tenant.window.ExpiredBefore(expire->cutoff);
    if (expired.empty()) return {Status::OK(), {}};
    return {ExecuteRemove(tenant, expired, trace), {}};
  }

  if (std::get_if<BudgetStatusRequest>(&request) != nullptr) {
    // The accountant lives on the Tenant, not the session: a budget probe
    // answers while evicted and never defeats the memory budget.
    if (Status gate = CheckLifecycle(tenant); !gate.ok()) return {gate, {}};
    const stream::PrivacyAccountant& acct = tenant.accountant;
    BudgetStatus status;
    status.max_epsilon = acct.config().max_epsilon;
    status.max_delta = acct.config().max_delta;
    status.min_remaining_epsilon = acct.config().min_remaining_epsilon;
    status.composition =
        stream::CompositionToString(acct.config().composition);
    status.spent_epsilon = acct.SpentEpsilon();
    status.spent_delta = acct.SpentDelta();
    status.remaining_epsilon = acct.RemainingEpsilon();
    status.enforced = acct.enforced();
    status.allocations = acct.history().size();
    status.refusals = acct.refusals();
    return {Status::OK(), std::move(status)};
  }

  return {Status::Internal("unhandled serve request"), {}};
}

Status SanitizerService::ExecuteRemove(Tenant& tenant,
                                       const std::vector<std::string>& users,
                                       obs::RequestTrace* trace) {
  // Land queued appends first: RemoveUsers must see the union the client
  // sees, and a removed user's queued rows must not resurrect it later.
  PRIVSAN_RETURN_IF_ERROR(FlushLocked(tenant, trace));
  const auto remove_start = std::chrono::steady_clock::now();
  PRIVSAN_RETURN_IF_ERROR(tenant.session->RemoveUsers(users));
  if (trace != nullptr) trace->solve_ms += ElapsedMs(remove_start);
  const RemoveStats& rs = tenant.session->last_remove_stats();
  tenant.window.Forget(users);
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.stats.users_removed += rs.removed_users;
    tenant.stats.rows_patched_on_remove += rs.rows_copied;
    tenant.stats.rows_copied = rs.rows_copied;
    tenant.stats.rows_rebuilt = rs.rows_rebuilt;
  }
  // The log shrank: every cached solution is stale.
  InvalidateCache(tenant);
  RefreshResidentBytes(tenant);
  return Status::OK();
}

Status SanitizerService::ChargeBudget(Tenant& tenant, double epsilon,
                                      double delta, const char* verb) {
  Status charged =
      tenant.accountant.Charge(epsilon, delta, verb, UnixMicrosNow());
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.stats.epsilon_spent_micro = static_cast<uint64_t>(
        tenant.accountant.SpentEpsilon() * 1e6 + 0.5);
    tenant.stats.budget_refusals = tenant.accountant.refusals();
  }
  return charged;
}

ServeResponse SanitizerService::ExecuteSolve(Tenant& tenant,
                                             UtilityObjective objective,
                                             const UmpQuery& query,
                                             obs::RequestTrace* trace,
                                             bool charge) {
  const bool cache_enabled = options_.result_cache_capacity > 0;
  std::string key;
  if (cache_enabled) {
    const auto cache_start = std::chrono::steady_clock::now();
    key = CacheKey(objective, query);
    std::lock_guard<std::mutex> lock(tenant.cmu);
    auto it = tenant.cache.find(key);
    if (trace != nullptr) trace->cache_ms += ElapsedMs(cache_start);
    if (it != tenant.cache.end()) {
      ++tenant.stats.cache_hits;
      // A hit re-serves an answer already paid for — no new charge.
      return {Status::OK(), it->second};
    }
    ++tenant.stats.cache_misses;
  }
  // Bill the accountant before solving (accounting precedes release;
  // a failed solve overcounts conservatively, never undercounts).
  if (charge) {
    if (Status billed = ChargeBudget(tenant, query.privacy.epsilon,
                                     query.privacy.delta, "Solve");
        !billed.ok()) {
      return {billed, {}};
    }
  }
  const auto solve_start = std::chrono::steady_clock::now();
  Result<UmpSolution> solution = tenant.session->Solve(objective, query);
  if (trace != nullptr) trace->solve_ms += ElapsedMs(solve_start);
  if (!solution.ok()) return {solution.status(), {}};
  if (trace != nullptr) {
    trace->iterations +=
        static_cast<uint64_t>(solution->stats.simplex_iterations);
    trace->repair_pivots +=
        static_cast<uint64_t>(solution->stats.dual_iterations);
  }
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    ++tenant.stats.solves;
    tenant.stats.repair_aborted +=
        static_cast<uint64_t>(solution->stats.repair_aborted);
    tenant.stats.refactorizations +=
        static_cast<uint64_t>(solution->stats.refactorizations);
    tenant.stats.factor_nnz = std::max(
        tenant.stats.factor_nnz,
        static_cast<uint64_t>(solution->stats.factor_nnz));
    tenant.stats.max_update_run = std::max(
        tenant.stats.max_update_run,
        static_cast<uint64_t>(solution->stats.max_update_run));
    MergeSparseKernelStats(tenant.stats, solution->stats.sparse_solves,
                           solution->stats.sparse_ftran_hits,
                           solution->stats.mean_reach_fraction);
    if (cache_enabled) {
      if (tenant.cache_order.size() >= options_.result_cache_capacity) {
        const std::string& oldest = tenant.cache_order.front();
        auto it = tenant.cache.find(oldest);
        if (it != tenant.cache.end()) {
          const uint64_t bytes = EstimateCacheEntryBytes(oldest, it->second);
          tenant.cache_bytes -= std::min(tenant.cache_bytes, bytes);
          tenant.cache.erase(it);
        }
        tenant.cache_order.erase(tenant.cache_order.begin());
      }
      tenant.cache_bytes += EstimateCacheEntryBytes(key, *solution);
      tenant.cache.emplace(key, *solution);
      tenant.cache_order.push_back(std::move(key));
    }
  }
  RefreshResidentBytes(tenant);
  return {Status::OK(), std::move(*solution)};
}

ServeResponse SanitizerService::ExecuteCreate(Tenant& tenant,
                                              CreateTenantRequest& request) {
  if (tenant.initialized) {
    return {Status::Internal("tenant already initialized: " + tenant.name),
            {}};
  }
  tenant.initialized = true;
  tenant.session_options =
      WithPool(request.options.value_or(options_.session));
  Result<SanitizerSession> session =
      SanitizerSession::Create(request.initial, tenant.session_options);
  if (!session.ok()) {
    // Release the name so a corrected create can reuse it; jobs already
    // queued behind this one answer with the construction error.
    tenant.init_error = session.status();
    (void)manager_.Remove(tenant.name);
    return {session.status(), {}};
  }
  tenant.session = std::make_unique<SanitizerSession>(std::move(*session));
  tenant.accountant = stream::PrivacyAccountant(request.budget);
  tenant.window = stream::WindowState(request.window);
  // Users shipped in the initial log were active "now" for retention.
  const uint64_t now_secs = UnixSecondsNow();
  for (UserId u = 0; u < request.initial.num_users(); ++u) {
    tenant.window.Observe(request.initial.user_name(u), now_secs);
  }
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.fast_ready = true;
  }
  RefreshResidentBytes(tenant);
  return {Status::OK(), {}};
}

ServeResponse SanitizerService::ExecuteRestore(Tenant& tenant,
                                               RestoreTenantRequest& request) {
  if (tenant.initialized) {
    return {Status::Internal("tenant already initialized: " + tenant.name),
            {}};
  }
  tenant.initialized = true;
  tenant.session_options =
      WithPool(request.options.value_or(options_.session));
  TenantStreamState stream_state;
  Result<SanitizerSession> session =
      RestoreSession(request.path, tenant.session_options, &stream_state);
  if (!session.ok()) {
    tenant.init_error = session.status();
    (void)manager_.Remove(tenant.name);
    return {session.status(), {}};
  }
  tenant.session = std::make_unique<SanitizerSession>(std::move(*session));
  // A restored/migrated tenant resumes with its budget spend and window
  // intact (v1 snapshots restore with a fresh, unenforced accountant).
  tenant.accountant = std::move(stream_state.accountant);
  tenant.window = std::move(stream_state.window);
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.stats.epsilon_spent_micro = static_cast<uint64_t>(
        tenant.accountant.SpentEpsilon() * 1e6 + 0.5);
    tenant.stats.budget_refusals = tenant.accountant.refusals();
  }
  {
    std::lock_guard<std::mutex> lock(tenant.cmu);
    tenant.fast_ready = true;
  }
  RefreshResidentBytes(tenant);
  return {Status::OK(), {}};
}

// --- Observability ---------------------------------------------------------

namespace {

// Stable verb names indexed by ServeRequest variant alternative.
constexpr const char* kVerbNames[] = {
    "CreateTenant", "Append",       "Flush",      "Solve",
    "Sweep",        "Sanitize",     "Stats",      "SaveSnapshot",
    "RestoreTenant", "DropTenant",  "Metrics",    "SlowLog",
    "RemoveUsers",  "ExpireWindow", "BudgetStatus"};
static_assert(std::variant_size_v<ServeRequest> ==
              sizeof(kVerbNames) / sizeof(kVerbNames[0]));

// TenantStats fields exported per tenant at scrape time. Monotonic
// counters get the _total suffix; point-in-time fields render as gauges.
struct TenantStatField {
  const char* name;
  const char* help;
  const char* type;
  uint64_t TenantStats::* field;
};
constexpr TenantStatField kTenantStatFields[] = {
    {"privsan_tenant_appends_enqueued_total",
     "Append batches accepted into the pending queue", "counter",
     &TenantStats::appends_enqueued},
    {"privsan_tenant_flushes_total", "AppendUsers flushes performed",
     "counter", &TenantStats::flushes},
    {"privsan_tenant_appends_coalesced_total",
     "Queued appends merged into flushes", "counter",
     &TenantStats::appends_coalesced},
    {"privsan_tenant_maintenance_flushes_total",
     "Flushes initiated by the maintenance thread", "counter",
     &TenantStats::maintenance_flushes},
    {"privsan_tenant_solves_total", "LP solves executed (misses + sweeps)",
     "counter", &TenantStats::solves},
    {"privsan_tenant_cache_hits_total", "Result-cache hits", "counter",
     &TenantStats::cache_hits},
    {"privsan_tenant_cache_misses_total", "Result-cache misses", "counter",
     &TenantStats::cache_misses},
    {"privsan_tenant_repair_aborted_total",
     "Warm solves whose dual repair hit the pivot cap and fell back cold",
     "counter", &TenantStats::repair_aborted},
    {"privsan_tenant_refactorizations_total",
     "Basis refactorizations across this tenant's solves", "counter",
     &TenantStats::refactorizations},
    {"privsan_tenant_factor_nnz", "Peak basis-factorization nonzeros",
     "gauge", &TenantStats::factor_nnz},
    {"privsan_tenant_sparse_solves_total",
     "Pattern-driven FTRAN/BTRAN solves (hyper-sparse kernel entered)",
     "counter", &TenantStats::sparse_solves},
    {"privsan_tenant_sparse_ftran_hits_total",
     "Hyper-sparse solves that stayed sparse end to end (no fallback)",
     "counter", &TenantStats::sparse_ftran_hits},
    {"privsan_tenant_mean_reach_permille",
     "Mean fraction of rows a hyper-sparse solve reached, in permille",
     "gauge", &TenantStats::mean_reach_permille},
    {"privsan_tenant_max_update_run",
     "Longest Forrest-Tomlin update run between refactorizations", "gauge",
     &TenantStats::max_update_run},
    {"privsan_tenant_rows_copied", "Rows copied by the last flush", "gauge",
     &TenantStats::rows_copied},
    {"privsan_tenant_rows_rebuilt", "Rows rebuilt by the last flush",
     "gauge", &TenantStats::rows_rebuilt},
    {"privsan_tenant_refresh_solves_total",
     "Hot-query refresh solves after background flushes", "counter",
     &TenantStats::refresh_solves},
    {"privsan_tenant_evictions_total",
     "Times this tenant was spilled to its eviction snapshot", "counter",
     &TenantStats::evictions},
    {"privsan_tenant_reloads_total",
     "Transparent reloads from the eviction snapshot", "counter",
     &TenantStats::reloads},
    {"privsan_tenant_fast_lane_hits_total",
     "Requests answered on the read-only fast lane", "counter",
     &TenantStats::fast_lane_hits},
    {"privsan_tenant_admission_rejected_total",
     "Requests rejected by the per-tenant queue-depth cap", "counter",
     &TenantStats::admission_rejected},
    {"privsan_tenant_resident_bytes",
     "Estimated resident footprint (session + caches); 0 while evicted",
     "gauge", &TenantStats::resident_bytes},
    {"privsan_tenant_users_removed_total",
     "Users removed by RemoveUsers and window expiry", "counter",
     &TenantStats::users_removed},
    {"privsan_tenant_rows_patched_on_remove_total",
     "DP rows copied unchanged across removals (patched, not rebuilt)",
     "counter", &TenantStats::rows_patched_on_remove},
    {"privsan_tenant_epsilon_spent_micro",
     "Cumulative composed epsilon spend, in micro-epsilon", "gauge",
     &TenantStats::epsilon_spent_micro},
    {"privsan_tenant_budget_refusals_total",
     "Requests refused because the privacy budget was exhausted", "counter",
     &TenantStats::budget_refusals},
};

}  // namespace

void SanitizerService::RegisterMetrics() {
  constexpr size_t kNumVerbs = std::variant_size_v<ServeRequest>;
  requests_total_.resize(kNumVerbs);
  request_errors_total_.resize(kNumVerbs);
  request_duration_.resize(kNumVerbs);
  for (size_t i = 0; i < kNumVerbs; ++i) {
    const obs::LabelSet labels = {{"verb", kVerbNames[i]}};
    requests_total_[i] = registry_.GetCounter(
        "privsan_requests_total", "Requests finished, by verb", labels);
    request_errors_total_[i] = registry_.GetCounter(
        "privsan_request_errors_total",
        "Requests finished with a non-OK status, by verb", labels);
    request_duration_[i] = registry_.GetHistogram(
        "privsan_request_duration_seconds",
        "End-to-end request latency (queue wait included), by verb",
        labels);
  }
  const auto stage = [this](const char* name) {
    return registry_.GetHistogram(
        "privsan_stage_duration_seconds",
        "Per-request stage latency (queue_wait, flush, solve, "
        "cache_lookup)",
        {{"stage", name}});
  };
  stage_queue_wait_ = stage("queue_wait");
  stage_flush_ = stage("flush");
  stage_solve_ = stage("solve");
  stage_cache_lookup_ = stage("cache_lookup");
  simplex_iterations_total_ = registry_.GetCounter(
      "privsan_simplex_iterations_total",
      "Simplex iterations (primal + dual) spent by all solves");
  repair_pivots_total_ = registry_.GetCounter(
      "privsan_repair_pivots_total",
      "Dual pivots spent repairing warm bases after appends");
  slow_requests_total_ = registry_.GetCounter(
      "privsan_slow_requests_total",
      "Requests at or above the slow-request threshold");

  // Per-tenant values are computed at scrape time from TenantStats and the
  // queue state: cheaper than maintaining labeled metrics on every
  // counter bump, and tenants that come and go never leak registry slots.
  registry_.AddCollector([this](obs::PrometheusWriter* writer) {
    const std::vector<std::shared_ptr<Tenant>> tenants = manager_.All();
    writer->Header("privsan_tenants", "Registered tenants", "gauge");
    writer->Value("privsan_tenants", {},
                  static_cast<double>(tenants.size()));
    writer->Header("privsan_tenant_queue_depth",
                   "Queued jobs per tenant and lane", "gauge");
    for (const std::shared_ptr<Tenant>& tenant : tenants) {
      size_t heavy = 0, fast = 0;
      {
        std::lock_guard<std::mutex> lock(tenant->qmu);
        heavy = tenant->jobs.size();
        fast = tenant->fast_jobs.size();
      }
      writer->Value("privsan_tenant_queue_depth",
                    {{"tenant", tenant->name}, {"lane", "heavy"}},
                    static_cast<double>(heavy));
      writer->Value("privsan_tenant_queue_depth",
                    {{"tenant", tenant->name}, {"lane", "fast"}},
                    static_cast<double>(fast));
    }
    for (const TenantStatField& field : kTenantStatFields) {
      writer->Header(field.name, field.help, field.type);
      for (const std::shared_ptr<Tenant>& tenant : tenants) {
        uint64_t value = 0;
        {
          std::lock_guard<std::mutex> lock(tenant->cmu);
          value = tenant->stats.*(field.field);
        }
        writer->Value(field.name, {{"tenant", tenant->name}},
                      static_cast<double>(value));
      }
    }
    writer->Header("privsan_slowlog_dropped_total",
                   "Slow-log records evicted by the ring buffer",
                   "counter");
    writer->Value("privsan_slowlog_dropped_total", {},
                  static_cast<double>(slow_log_.dropped()));
  });
}

void SanitizerService::RecordRequest(size_t verb_index,
                                     const std::string& tenant,
                                     const Status& status, double total_ms,
                                     const obs::RequestTrace& trace) {
  if (verb_index >= requests_total_.size()) return;
  requests_total_[verb_index]->Increment();
  if (!status.ok()) request_errors_total_[verb_index]->Increment();
  request_duration_[verb_index]->RecordMillis(total_ms);
  stage_queue_wait_->RecordMillis(trace.queue_ms);
  if (trace.flush_ms > 0) stage_flush_->RecordMillis(trace.flush_ms);
  if (trace.solve_ms > 0) stage_solve_->RecordMillis(trace.solve_ms);
  if (trace.cache_ms > 0) stage_cache_lookup_->RecordMillis(trace.cache_ms);
  if (trace.iterations > 0) {
    simplex_iterations_total_->Increment(trace.iterations);
  }
  if (trace.repair_pivots > 0) {
    repair_pivots_total_->Increment(trace.repair_pivots);
  }
  if (options_.slow_request_threshold_ms <= 0 ||
      total_ms >= options_.slow_request_threshold_ms) {
    slow_requests_total_->Increment();
  }
  slow_log_.MaybeRecord(tenant, kVerbNames[verb_index],
                        static_cast<uint16_t>(status.code()), total_ms,
                        trace);
}

std::string SanitizerService::RenderMetrics() const {
  return registry_.RenderPrometheusText();
}

// --- Maintenance -----------------------------------------------------------

void SanitizerService::MaintenanceLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.maintenance_interval_ms);
  std::unique_lock<std::mutex> lock(maintenance_mu_);
  while (!stopping_) {
    maintenance_cv_.wait_for(lock, interval, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    MaintenanceTick();
    lock.lock();
  }
}

void SanitizerService::MaintenanceTick() {
  const auto now = std::chrono::steady_clock::now();
  const auto max_age = std::chrono::milliseconds(options_.flush_max_age_ms);
  std::vector<std::shared_ptr<Tenant>> tenants = manager_.All();

  uint64_t total_resident = 0;
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    bool want_flush = false;
    uint64_t expire_cutoff = 0;
    bool want_expire = false;
    {
      // Never wait behind a running solve; a busy tenant flushes itself
      // (pre-solve) or is revisited next tick.
      std::unique_lock<std::mutex> mu(tenant->mu, std::try_to_lock);
      if (!mu.owns_lock()) continue;
      {
        std::lock_guard<std::mutex> cmu(tenant->cmu);
        total_resident += tenant->stats.resident_bytes;
      }
      if (!tenant->pending.empty()) {
        want_flush = tenant->pending.size() >= options_.flush_queue_depth ||
                     now - tenant->oldest_pending >= max_age;
      }
      // Drive the retention window: when the policy says users have aged
      // out, queue an expiry job (which flushes, removes, and re-warms via
      // the normal heavy-lane path). Only for healthy, non-dropped
      // tenants — expiry must not resurrect or reload anything by itself.
      if (!want_flush && tenant->window.policy().active() &&
          tenant->initialized && !tenant->dropped &&
          tenant->init_error.ok()) {
        expire_cutoff =
            PolicyCutoff(tenant->window.policy(), UnixSecondsNow());
        want_expire =
            !tenant->window.ExpiredBefore(expire_cutoff).empty();
      }
    }
    if (!want_flush && !want_expire) continue;
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(tenant->qmu);
      // flush_scheduled doubles as the "one maintenance job in flight"
      // latch for both flush and expiry; DrainQueue resets it.
      if (!tenant->flush_scheduled) {
        tenant->flush_scheduled = true;
        schedule = true;
      }
    }
    if (schedule) {
      if (want_flush) {
        Enqueue(tenant, FlushRequest{tenant->name}, /*maintenance=*/true,
                nullptr);
      } else {
        Enqueue(tenant, ExpireWindowRequest{tenant->name, expire_cutoff},
                /*maintenance=*/true, nullptr);
      }
    }
  }

  if (options_.memory_budget_bytes == 0 ||
      total_resident <= options_.memory_budget_bytes) {
    return;
  }
  // Over budget: evict idle tenants coldest-first until back under.
  struct Candidate {
    std::shared_ptr<Tenant> tenant;
    std::chrono::steady_clock::time_point access;
  };
  std::vector<Candidate> candidates;
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    std::lock_guard<std::mutex> lock(tenant->qmu);
    if (tenant->draining || !tenant->jobs.empty()) continue;
    candidates.push_back({tenant, tenant->last_access});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.access < b.access;
            });
  for (const Candidate& candidate : candidates) {
    if (total_resident <= options_.memory_budget_bytes) break;
    const uint64_t freed = TryEvict(candidate.tenant);
    total_resident -= std::min(total_resident, freed);
  }
}

uint64_t SanitizerService::TryEvict(const std::shared_ptr<Tenant>& tenant) {
  // Reserve the tenant's queue by claiming the draining flag — exactly how
  // a drain worker does — so no job can start while the (slow) spill write
  // runs, yet Submit never waits on qmu for longer than a queue push.
  {
    std::lock_guard<std::mutex> lock(tenant->qmu);
    if (tenant->draining || !tenant->jobs.empty()) return 0;
    tenant->draining = true;
  }
  uint64_t freed = 0;
  {
    // Uncontended: jobs only run under the draining reservation we hold.
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session != nullptr && !tenant->dropped &&
        tenant->pending.empty()) {
      const std::string path = SpillPath(tenant->name);
      // Spill the stream state too: the spill doubles as a crash artifact,
      // and a RESTORE from it must preserve the budget position. On the
      // transparent reload path the in-memory accountant/window stay
      // authoritative (EnsureLive discards the stored sections).
      const TenantStreamState stream_state{tenant->accountant,
                                           tenant->window};
      if (serve::SaveSnapshot(*tenant->session, path, &stream_state).ok()) {
        tenant->session.reset();
        tenant->evicted = true;
        tenant->spill_path = path;
        InvalidateCache(*tenant);
        {
          std::lock_guard<std::mutex> cmu(tenant->cmu);
          freed = tenant->stats.resident_bytes;
          ++tenant->stats.evictions;
        }
        RefreshResidentBytes(*tenant);
      }
      // On a failed spill (disk full, bad directory) keep the tenant
      // resident rather than lose state; the budget stays over until the
      // next tick.
    }
  }
  // Release the reservation. Jobs submitted during the eviction found
  // draining == true and did not schedule a worker — that is now on us.
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(tenant->qmu);
    if (tenant->jobs.empty()) {
      tenant->draining = false;
    } else {
      start = true;  // keep the reservation; hand it to a drain worker
    }
  }
  if (start) {
    pool_->Submit([this, tenant] { DrainQueue(tenant); });
  }
  return freed;
}

// --- Blocking wrappers ------------------------------------------------------

Status SanitizerService::CreateTenant(const std::string& tenant,
                                      const SearchLog& initial) {
  return Submit(CreateTenantRequest{tenant, initial, std::nullopt})
      .get()
      .status;
}

Status SanitizerService::CreateTenant(const std::string& tenant,
                                      const SearchLog& initial,
                                      SessionOptions options) {
  return Submit(CreateTenantRequest{tenant, initial, std::move(options)})
      .get()
      .status;
}

Status SanitizerService::DropTenant(const std::string& tenant) {
  return Submit(DropTenantRequest{tenant}).get().status;
}

std::vector<std::string> SanitizerService::Tenants() const {
  return manager_.Names();
}

Status SanitizerService::Append(const std::string& tenant,
                                const SearchLog& logs) {
  return Submit(AppendRequest{tenant, logs}).get().status;
}

Status SanitizerService::Flush(const std::string& tenant) {
  return Submit(FlushRequest{tenant}).get().status;
}

Result<UmpSolution> SanitizerService::Solve(const std::string& tenant,
                                            UtilityObjective objective,
                                            const UmpQuery& query) {
  ServeResponse response =
      Submit(SolveRequest{tenant, objective, query}).get();
  PRIVSAN_RETURN_IF_ERROR(response.status);
  if (auto* solution = std::get_if<UmpSolution>(&response.payload)) {
    return std::move(*solution);
  }
  return Status::Internal("Solve returned no solution payload");
}

Result<SweepResult> SanitizerService::Sweep(const std::string& tenant,
                                            UtilityObjective objective,
                                            const std::vector<UmpQuery>& grid,
                                            const SweepOptions& sweep) {
  ServeResponse response =
      Submit(SweepRequest{tenant, objective, grid, sweep}).get();
  PRIVSAN_RETURN_IF_ERROR(response.status);
  if (auto* result = std::get_if<SweepResult>(&response.payload)) {
    return std::move(*result);
  }
  return Status::Internal("Sweep returned no sweep payload");
}

Result<SanitizeReport> SanitizerService::Sanitize(
    const std::string& tenant, const PrivacyParams& privacy) {
  ServeResponse response = Submit(SanitizeRequest{tenant, privacy}).get();
  PRIVSAN_RETURN_IF_ERROR(response.status);
  if (auto* report = std::get_if<SanitizeReport>(&response.payload)) {
    return std::move(*report);
  }
  return Status::Internal("Sanitize returned no report payload");
}

Result<TenantStats> SanitizerService::Stats(const std::string& tenant) {
  ServeResponse response = Submit(StatsRequest{tenant}).get();
  PRIVSAN_RETURN_IF_ERROR(response.status);
  if (auto* stats = std::get_if<TenantStats>(&response.payload)) {
    return *stats;
  }
  return Status::Internal("Stats returned no stats payload");
}

Status SanitizerService::RemoveUsers(const std::string& tenant,
                                     std::vector<std::string> users) {
  return Submit(RemoveUsersRequest{tenant, std::move(users)}).get().status;
}

Status SanitizerService::ExpireWindow(const std::string& tenant,
                                      uint64_t cutoff) {
  return Submit(ExpireWindowRequest{tenant, cutoff}).get().status;
}

Result<BudgetStatus> SanitizerService::Budget(const std::string& tenant) {
  ServeResponse response = Submit(BudgetStatusRequest{tenant}).get();
  PRIVSAN_RETURN_IF_ERROR(response.status);
  if (auto* budget = std::get_if<BudgetStatus>(&response.payload)) {
    return std::move(*budget);
  }
  return Status::Internal("BudgetStatus returned no budget payload");
}

Status SanitizerService::SaveSnapshot(const std::string& tenant,
                                      const std::string& path) {
  return Submit(SaveSnapshotRequest{tenant, path}).get().status;
}

Status SanitizerService::RestoreTenant(const std::string& tenant,
                                       const std::string& path) {
  return Submit(RestoreTenantRequest{tenant, path, std::nullopt})
      .get()
      .status;
}

Status SanitizerService::RestoreTenant(const std::string& tenant,
                                       const std::string& path,
                                       SessionOptions options) {
  return Submit(RestoreTenantRequest{tenant, path, std::move(options)})
      .get()
      .status;
}

}  // namespace serve
}  // namespace privsan
