// The typed serve API: every operation the serving layer offers, expressed
// as one ServeRequest value answered by one ServeResponse value.
//
// The request family mirrors the verbs of serve::SanitizerService; a
// request names its tenant and carries exactly the inputs of the matching
// blocking method. SanitizerService::Submit(request) enqueues it and
// returns a std::future<ServeResponse> immediately:
//
//   * Requests addressed to one tenant land on that tenant's FIFO work
//     queue and execute in submission order — "append then solve" through
//     Submit means the solve sees the append, exactly as with the blocking
//     calls. Distinct tenants' queues drain in parallel on the service's
//     worker pool.
//   * CreateTenant / RestoreTenant register the tenant name synchronously
//     inside Submit (duplicate names fail the future immediately) and run
//     the expensive construction as the first job on the new tenant's
//     queue, so a pipelined CREATE -> APPEND -> SOLVE burst keeps FIFO
//     semantics without waiting on any future in between.
//   * Append's future resolves once the batch is accepted into the
//     tenant's pending queue — the merge/re-preprocess/row-patch work is
//     deferred to the next flush (explicit, pre-solve, or background).
//
// A ServeResponse is a Status plus the payload of the verb that produced
// it: Solve -> UmpSolution, Sweep -> SweepResult, Sanitize ->
// SanitizeReport, Stats -> TenantStats, everything else -> no payload.
#ifndef PRIVSAN_SERVE_API_H_
#define PRIVSAN_SERVE_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/privacy_params.h"
#include "core/session.h"
#include "core/ump.h"
#include "log/search_log.h"
#include "obs/slow_log.h"
#include "stream/accountant.h"
#include "stream/window.h"
#include "util/result.h"

namespace privsan {
namespace serve {

// --- Requests --------------------------------------------------------------

// `options` overrides ServiceOptions::session for this tenant only.
// `budget` and `window` configure the tenant's privacy accountant and
// retention window (both default-inactive; plain wire-encodable values,
// unlike the local-only `options` override).
struct CreateTenantRequest {
  std::string tenant;
  SearchLog initial;
  std::optional<SessionOptions> options;
  stream::BudgetConfig budget;
  stream::WindowPolicy window;
};

// Enqueues user logs; they coalesce into one incremental AppendUsers at the
// tenant's next flush.
struct AppendRequest {
  std::string tenant;
  SearchLog logs;
};

// Drains the tenant's pending-append queue now (no-op when empty).
struct FlushRequest {
  std::string tenant;
};

struct SolveRequest {
  std::string tenant;
  UtilityObjective objective = UtilityObjective::kOutputSize;
  UmpQuery query;
};

struct SweepRequest {
  std::string tenant;
  UtilityObjective objective = UtilityObjective::kOutputSize;
  std::vector<UmpQuery> grid;
  SweepOptions sweep;
};

struct SanitizeRequest {
  std::string tenant;
  PrivacyParams privacy;
};

struct StatsRequest {
  std::string tenant;
};

// Flushes queued appends, then persists the tenant's session state.
struct SaveSnapshotRequest {
  std::string tenant;
  std::string path;
};

// Creates `tenant` from a snapshot file; fails if the name exists.
struct RestoreTenantRequest {
  std::string tenant;
  std::string path;
  std::optional<SessionOptions> options;
};

struct DropTenantRequest {
  std::string tenant;
};

// Observability verbs. Neither addresses a tenant (`tenant` stays empty —
// RequestTenant returns it for uniformity); both are answered inline by
// Submit without touching any tenant queue, so a scrape never waits
// behind a sweep.

// Full Prometheus text scrape of the service's metric registry.
struct MetricsRequest {
  std::string tenant;  // always empty; present for RequestTenant
};

// Dump of the slow-request ring buffer, oldest-first. `limit` 0 returns
// everything; otherwise the newest `limit` records.
struct SlowLogRequest {
  std::string tenant;  // always empty; present for RequestTenant
  uint64_t limit = 0;
};

// Streaming-lifecycle verbs (stream/window.h, stream/accountant.h).

// Removes the named users from the tenant's log — the inverse of Append.
// Queued appends are flushed first so the removal sees every prior append
// in FIFO order; the DP rows are patched incrementally and the warm basis
// is remapped down (core/session.h RemoveUsers).
struct RemoveUsersRequest {
  std::string tenant;
  std::vector<std::string> users;
};

// Removes every user whose last-seen timestamp is older than `cutoff`
// (explicit retention; the maintenance thread applies the tenant's
// WindowPolicy continuously on its own).
struct ExpireWindowRequest {
  std::string tenant;
  uint64_t cutoff = 0;
};

// Reads the tenant's privacy-budget accountant (cheap, read-only).
struct BudgetStatusRequest {
  std::string tenant;
};

// New verbs append at the end: the variant index is the wire protocol's
// frame verb byte (net/frame.h) and the metrics verb-table index.
using ServeRequest =
    std::variant<CreateTenantRequest, AppendRequest, FlushRequest,
                 SolveRequest, SweepRequest, SanitizeRequest, StatsRequest,
                 SaveSnapshotRequest, RestoreTenantRequest, DropTenantRequest,
                 MetricsRequest, SlowLogRequest, RemoveUsersRequest,
                 ExpireWindowRequest, BudgetStatusRequest>;

// The tenant a request addresses (empty for the tenant-less observability
// verbs Metrics and SlowLog).
const std::string& RequestTenant(const ServeRequest& request);

// Stable verb name for logs and error messages ("Solve", "Append", ...).
const char* RequestName(const ServeRequest& request);

// --- Responses -------------------------------------------------------------

// Serve-path counters for one tenant. All counters are monotonic;
// resident_bytes is a gauge refreshed whenever the tenant's state changes.
struct TenantStats {
  uint64_t appends_enqueued = 0;   // Append() calls accepted into the queue
  uint64_t flushes = 0;            // AppendUsers calls actually performed
  uint64_t appends_coalesced = 0;  // queued appends merged into those flushes
  // Flushes initiated by the service's maintenance thread (queue depth or
  // age trigger) rather than by an explicit Flush or a pre-solve flush.
  uint64_t maintenance_flushes = 0;
  uint64_t solves = 0;  // solves executed (cache misses + sweeps)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Warm solves whose dual repair hit SimplexOptions::warm_repair_pivot_cap
  // and fell back cold — sustained growth means this tenant's appends are
  // too large to repair and the cap (or flush cadence) needs tuning.
  uint64_t repair_aborted = 0;
  // Simplex kernel health, maxed over this tenant's solves: basis
  // refactorization count, peak factorization fill (nonzeros an FTRAN
  // traverses), and the longest update run between refactorizations. A
  // shrinking update run or ballooning fill flags the tenant whose DP
  // systems degrade the Forrest–Tomlin update scheme.
  uint64_t refactorizations = 0;
  uint64_t factor_nnz = 0;
  uint64_t max_update_run = 0;
  // Hyper-sparse FTRAN/BTRAN health across this tenant's solves:
  // pattern-driven kernel calls, how many stayed sparse end to end (no
  // density fallback), and the solve-count-weighted mean reach fraction in
  // permille (uint64 so the Prometheus export table stays uniform — 83
  // means a solve touched 8.3% of the rows on average).
  uint64_t sparse_solves = 0;
  uint64_t sparse_ftran_hits = 0;
  uint64_t mean_reach_permille = 0;
  // From the session's last flush (core/session.h AppendStats).
  uint64_t rows_copied = 0;
  uint64_t rows_rebuilt = 0;
  // Hot-query refreshes: after a background flush, the most recent solve
  // query is re-solved off the query path so the repeated-budget query
  // stays a cache hit and the stored basis is re-optimized.
  uint64_t refresh_solves = 0;
  // Global-memory-budget lifecycle: times this tenant was spilled to its
  // eviction snapshot, and times it was transparently reloaded on access.
  uint64_t evictions = 0;
  uint64_t reloads = 0;
  // Two-lane scheduling (ServiceOptions::fast_lane): read-only requests
  // (Stats, cache-hit Solves) answered on the per-tenant fast lane without
  // waiting behind the heavy queue.
  uint64_t fast_lane_hits = 0;
  // Admission control (ServiceOptions::max_queue_depth): requests rejected
  // with kResourceExhausted because the tenant's queue was full.
  uint64_t admission_rejected = 0;
  // Estimated resident footprint (session state + result cache); 0 while
  // evicted. The sum across tenants is what the maintenance thread holds
  // under ServiceOptions::memory_budget_bytes.
  uint64_t resident_bytes = 0;
  // Streaming lifecycle (RemoveUsers / ExpireWindow, plus window expiry
  // driven by the maintenance thread): users removed from the log, and DP
  // rows the removal path reused instead of recomputing.
  uint64_t users_removed = 0;
  uint64_t rows_patched_on_remove = 0;
  // Privacy accountant: cumulative ε spend under the tenant's composition
  // in micro-ε (uint64 so the Prometheus export table stays uniform —
  // 1500000 means ε = 1.5; full-precision doubles come from BUDGET), and
  // charges refused with kBudgetExhausted.
  uint64_t epsilon_spent_micro = 0;
  uint64_t budget_refusals = 0;
};

// Metrics scrape payload: the registry rendered as Prometheus text.
struct MetricsText {
  std::string text;
};

// Slow-request log dump, oldest-first, plus ring bookkeeping so a scraper
// can tell whether (and how far) the window slid since its last pull.
struct SlowLogDump {
  std::vector<obs::SlowRequestRecord> records;
  uint64_t dropped = 0;
  double threshold_ms = 0;
};

// BudgetStatus payload: the accountant's position, full precision.
// remaining_epsilon is +inf (and enforced is false) for an unlimited
// tenant; spent figures are still reported.
struct BudgetStatus {
  double max_epsilon = 0.0;
  double max_delta = 0.0;
  double min_remaining_epsilon = 0.0;
  std::string composition;  // "basic" | "advanced"
  double spent_epsilon = 0.0;
  double spent_delta = 0.0;
  double remaining_epsilon = 0.0;
  bool enforced = false;
  uint64_t allocations = 0;
  uint64_t refusals = 0;
};

using ServePayload =
    std::variant<std::monostate, UmpSolution, SweepResult, SanitizeReport,
                 TenantStats, MetricsText, SlowLogDump, BudgetStatus>;

struct ServeResponse {
  Status status;
  ServePayload payload;

  bool ok() const { return status.ok(); }

  // Typed payload accessors; nullptr when the response carries a different
  // payload (or failed).
  const UmpSolution* solution() const {
    return std::get_if<UmpSolution>(&payload);
  }
  const SweepResult* sweep() const {
    return std::get_if<SweepResult>(&payload);
  }
  const SanitizeReport* report() const {
    return std::get_if<SanitizeReport>(&payload);
  }
  const TenantStats* stats() const {
    return std::get_if<TenantStats>(&payload);
  }
  const MetricsText* metrics() const {
    return std::get_if<MetricsText>(&payload);
  }
  const SlowLogDump* slow_log() const {
    return std::get_if<SlowLogDump>(&payload);
  }
  const BudgetStatus* budget() const {
    return std::get_if<BudgetStatus>(&payload);
  }
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_API_H_
