// Multi-tenant session registry.
//
// A Tenant bundles one SanitizerSession with the serve-path state the
// facade (serve/service.h) keeps around it: the typed-request work queue,
// the pending-append queue, the budget-keyed result cache, counters, and
// the eviction lifecycle. Three mutexes split the state by latency class:
//
//   * `qmu` guards the cheap scheduling state — the FIFO work queues (the
//     heavy lane and, with ServiceOptions::fast_lane, the read-only fast
//     lane), the draining flags, and the LRU timestamp. Submit only ever
//     takes qmu, so enqueueing never waits behind a running solve.
//   * `mu` guards the heavy state — the session itself and the pending
//     appends. Exactly one heavy-queue job holds mu at a time (the drain
//     loop pops under qmu, executes under mu), so the lock *is* the
//     concurrency story for one tenant, and distinct tenants proceed
//     fully in parallel.
//   * `cmu` is the leaf lock for the read-mostly state — result cache,
//     counters, lifecycle mirrors. Heavy jobs take it briefly inside mu
//     for each cache/counter touch; fast-lane jobs take it alone, which
//     is how a Stats probe answers while a Sweep holds mu for seconds.
//
// qmu and mu are never held together, and cmu is only ever acquired last:
// a drain worker pops under qmu, then executes under mu, touching cmu per
// counter update; the eviction path claims the draining flag under qmu
// (exactly like a worker would), releases it, and only then takes mu for
// the spill write — so Submit never waits behind a snapshot.
//
// SessionManager itself is a thread-safe name -> Tenant map. It hands out
// shared_ptrs so a tenant being dropped mid-operation stays alive until
// the last operation on it returns.
#ifndef PRIVSAN_SERVE_SESSION_MANAGER_H_
#define PRIVSAN_SERVE_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "core/ump.h"
#include "serve/api.h"
#include "util/result.h"

namespace privsan {
namespace serve {

// One queued request plus how to deliver its response: the promise its
// Submit handed out, or — for the callback overload the network front-end
// uses — a completion function invoked from the worker thread. The promise
// is shared so jobs can travel through std::function (which requires
// copyable callables) on the worker pool.
struct ServeJob {
  ServeRequest request;
  std::shared_ptr<std::promise<ServeResponse>> promise;
  std::function<void(ServeResponse)> done;
  // Enqueued by the maintenance thread (background flush); clears the
  // tenant's flush_scheduled flag when it completes.
  bool maintenance = false;
  // When Enqueue accepted the job; the drain loop turns this into the
  // queue-wait stage of the request's trace (obs/slow_log.h).
  std::chrono::steady_clock::time_point enqueued_at{};
};

struct Tenant {
  explicit Tenant(std::string name_in) : name(std::move(name_in)) {}

  const std::string name;

  // --- Scheduling state, guarded by `qmu` --------------------------------
  std::mutex qmu;
  std::deque<ServeJob> jobs;  // per-tenant FIFO work queue
  bool draining = false;      // a worker is draining `jobs`
  bool flush_scheduled = false;  // a maintenance flush is queued/in flight
  std::chrono::steady_clock::time_point last_access{};  // LRU clock
  // The read-only fast lane (ServiceOptions::fast_lane): Stats and
  // cache-hit-eligible Solves queue here and are answered under `cmu`
  // alone, so a slow Sweep holding `mu` cannot block a cheap probe.
  std::deque<ServeJob> fast_jobs;
  bool fast_draining = false;  // a worker is draining `fast_jobs`

  // --- Session state, guarded by `mu` ------------------------------------
  std::mutex mu;
  // nullptr while the create/restore job has not run yet, after a failed
  // construction, while evicted, and after DropTenant.
  std::unique_ptr<SanitizerSession> session;
  // Options to rebuild the session with on reload after eviction.
  SessionOptions session_options;
  // Construction outcome: jobs queued behind a failed create/restore
  // answer with this status instead of executing.
  Status init_error = Status::OK();
  bool initialized = false;  // the create/restore job has run (ok or not)
  bool dropped = false;      // DropTenant executed; later jobs -> NotFound
  // Eviction lifecycle: when evicted, `spill_path` names the snapshot the
  // next request transparently reloads from.
  bool evicted = false;
  std::string spill_path;
  std::vector<SearchLog> pending;  // queued appends, coalesced on flush
  uint64_t pending_bytes = 0;      // estimated footprint of `pending`
  // When the oldest entry of `pending` was enqueued (age-triggered flush).
  std::chrono::steady_clock::time_point oldest_pending{};
  // The most recent Solve's inputs — what a background flush re-solves
  // (hot-query refresh) so the repair work lands off the query path.
  std::optional<std::pair<UtilityObjective, UmpQuery>> last_solve_query;
  // Streaming lifecycle state (stream/): the (ε, δ) accountant charged on
  // every non-cached Solve/Sweep/Sanitize, and the retention window fed by
  // flushes and drained by the maintenance thread. Mutated only by heavy
  // jobs under `mu`; serialized into tenant snapshots (spill + SNAPSHOT)
  // so both survive eviction, restore and router migration.
  stream::PrivacyAccountant accountant;
  stream::WindowState window;

  // --- Read-mostly state, guarded by `cmu` -------------------------------
  // The leaf lock of the tenant (acquired alone, or briefly inside `mu`,
  // never the other way around). It guards exactly what the fast lane
  // reads — the result cache, the counters, and a few mirror flags of the
  // `mu` lifecycle — so Stats and cached Solves answer without waiting
  // behind a running solve.
  std::mutex cmu;
  // Budget-keyed result cache: canonical query key -> solution. Insertion
  // order drives FIFO eviction; the whole cache is invalidated on flush.
  std::map<std::string, UmpSolution> cache;
  std::vector<std::string> cache_order;
  uint64_t cache_bytes = 0;  // estimated footprint of `cache`
  TenantStats stats;
  // Mirrors of the `mu` lifecycle, refreshed by the jobs that change it.
  // fast_ready gates fast-lane eligibility at submit time (false until the
  // create/restore job succeeded, false again after Drop); fast_gate is
  // the status a fast job answers when the tenant went away under it;
  // fast_has_pending mirrors !pending.empty() — queued appends make a
  // cached solution stale-in-flight, so such Solves take the heavy lane.
  bool fast_ready = false;
  Status fast_gate = Status::OK();
  bool fast_has_pending = false;
};

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers an empty tenant shell (the caller queues the construction
  // job); fails with FailedPrecondition if the name exists.
  Result<std::shared_ptr<Tenant>> Create(const std::string& name);

  // NotFound if absent.
  Result<std::shared_ptr<Tenant>> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  Status Remove(const std::string& name);

  std::vector<std::string> Names() const;  // sorted
  // The live tenant set in one pass (the maintenance thread's scan).
  std::vector<std::shared_ptr<Tenant>> All() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SESSION_MANAGER_H_
