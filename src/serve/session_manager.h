// Multi-tenant session registry.
//
// A Tenant bundles one SanitizerSession with the serve-path state the
// facade (serve/service.h) keeps around it: the append queue, the
// budget-keyed result cache, and counters. All of it is guarded by the
// tenant's own mutex — sessions are single-threaded by contract
// (core/session.h), so the lock *is* the concurrency story for one tenant,
// and distinct tenants proceed fully in parallel.
//
// SessionManager itself is a thread-safe name -> Tenant map. It hands out
// shared_ptrs so a tenant being dropped mid-operation stays alive until
// the last operation on it returns.
#ifndef PRIVSAN_SERVE_SESSION_MANAGER_H_
#define PRIVSAN_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "core/ump.h"
#include "util/result.h"

namespace privsan {
namespace serve {

// Serve-path counters for one tenant, all monotonic.
struct TenantStats {
  uint64_t appends_enqueued = 0;   // Append() calls accepted into the queue
  uint64_t flushes = 0;            // AppendUsers calls actually performed
  uint64_t appends_coalesced = 0;  // queued appends merged into those flushes
  uint64_t solves = 0;             // solves executed (cache misses + sweeps)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Warm solves whose dual repair hit SimplexOptions::warm_repair_pivot_cap
  // and fell back cold — sustained growth means this tenant's appends are
  // too large to repair and the cap (or flush cadence) needs tuning.
  uint64_t repair_aborted = 0;
  // From the session's last flush (core/session.h AppendStats).
  uint64_t rows_copied = 0;
  uint64_t rows_rebuilt = 0;
};

struct Tenant {
  explicit Tenant(SanitizerSession session_in)
      : session(std::move(session_in)) {}

  std::mutex mu;
  // Everything below is guarded by `mu`.
  SanitizerSession session;
  std::vector<SearchLog> pending;  // queued appends, coalesced on flush
  // Budget-keyed result cache: canonical query key -> solution. Insertion
  // order drives FIFO eviction; the whole cache is invalidated on flush.
  std::map<std::string, UmpSolution> cache;
  std::vector<std::string> cache_order;
  TenantStats stats;
};

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers a tenant; fails with FailedPrecondition if the name exists.
  Result<std::shared_ptr<Tenant>> Create(const std::string& name,
                                         SanitizerSession session);

  // NotFound if absent.
  Result<std::shared_ptr<Tenant>> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  Status Remove(const std::string& name);

  std::vector<std::string> Names() const;  // sorted
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SESSION_MANAGER_H_
