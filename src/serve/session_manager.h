// Multi-tenant session registry.
//
// A Tenant bundles one SanitizerSession with the serve-path state the
// facade (serve/service.h) keeps around it: the typed-request work queue,
// the pending-append queue, the budget-keyed result cache, counters, and
// the eviction lifecycle. Two mutexes split the state by latency class:
//
//   * `qmu` guards the cheap scheduling state — the FIFO work queue, the
//     draining flag, and the LRU timestamp. Submit only ever takes qmu, so
//     enqueueing never waits behind a running solve.
//   * `mu` guards the heavy state — the session itself, the pending
//     appends, the result cache and the counters. Exactly one queue job
//     holds mu at a time (the drain loop pops under qmu, executes under
//     mu), so the lock *is* the concurrency story for one tenant, and
//     distinct tenants proceed fully in parallel.
//
// The two are never held together: a drain worker pops under qmu, then
// executes under mu; the eviction path claims the draining flag under qmu
// (exactly like a worker would), releases it, and only then takes mu for
// the spill write — so Submit never waits behind a snapshot.
//
// SessionManager itself is a thread-safe name -> Tenant map. It hands out
// shared_ptrs so a tenant being dropped mid-operation stays alive until
// the last operation on it returns.
#ifndef PRIVSAN_SERVE_SESSION_MANAGER_H_
#define PRIVSAN_SERVE_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "core/ump.h"
#include "serve/api.h"
#include "util/result.h"

namespace privsan {
namespace serve {

// One queued request plus the promise its Submit handed out. The promise
// is shared so jobs can travel through std::function (which requires
// copyable callables) on the worker pool.
struct ServeJob {
  ServeRequest request;
  std::shared_ptr<std::promise<ServeResponse>> promise;
  // Enqueued by the maintenance thread (background flush); clears the
  // tenant's flush_scheduled flag when it completes.
  bool maintenance = false;
};

struct Tenant {
  explicit Tenant(std::string name_in) : name(std::move(name_in)) {}

  const std::string name;

  // --- Scheduling state, guarded by `qmu` --------------------------------
  std::mutex qmu;
  std::deque<ServeJob> jobs;  // per-tenant FIFO work queue
  bool draining = false;      // a worker is draining `jobs`
  bool flush_scheduled = false;  // a maintenance flush is queued/in flight
  std::chrono::steady_clock::time_point last_access{};  // LRU clock

  // --- Session state, guarded by `mu` ------------------------------------
  std::mutex mu;
  // nullptr while the create/restore job has not run yet, after a failed
  // construction, while evicted, and after DropTenant.
  std::unique_ptr<SanitizerSession> session;
  // Options to rebuild the session with on reload after eviction.
  SessionOptions session_options;
  // Construction outcome: jobs queued behind a failed create/restore
  // answer with this status instead of executing.
  Status init_error = Status::OK();
  bool initialized = false;  // the create/restore job has run (ok or not)
  bool dropped = false;      // DropTenant executed; later jobs -> NotFound
  // Eviction lifecycle: when evicted, `spill_path` names the snapshot the
  // next request transparently reloads from.
  bool evicted = false;
  std::string spill_path;
  std::vector<SearchLog> pending;  // queued appends, coalesced on flush
  uint64_t pending_bytes = 0;      // estimated footprint of `pending`
  // When the oldest entry of `pending` was enqueued (age-triggered flush).
  std::chrono::steady_clock::time_point oldest_pending{};
  // Budget-keyed result cache: canonical query key -> solution. Insertion
  // order drives FIFO eviction; the whole cache is invalidated on flush.
  std::map<std::string, UmpSolution> cache;
  std::vector<std::string> cache_order;
  uint64_t cache_bytes = 0;  // estimated footprint of `cache`
  // The most recent Solve's inputs — what a background flush re-solves
  // (hot-query refresh) so the repair work lands off the query path.
  std::optional<std::pair<UtilityObjective, UmpQuery>> last_solve_query;
  TenantStats stats;
};

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers an empty tenant shell (the caller queues the construction
  // job); fails with FailedPrecondition if the name exists.
  Result<std::shared_ptr<Tenant>> Create(const std::string& name);

  // NotFound if absent.
  Result<std::shared_ptr<Tenant>> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  Status Remove(const std::string& name);

  std::vector<std::string> Names() const;  // sorted
  // The live tenant set in one pass (the maintenance thread's scan).
  std::vector<std::shared_ptr<Tenant>> All() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SESSION_MANAGER_H_
