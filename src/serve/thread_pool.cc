#include "serve/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace privsan {
namespace serve {

namespace {

// Shared state of one ParallelFor: shards are claimed off an atomic cursor,
// so helpers and the calling thread balance load without any assignment of
// shards to threads — results only depend on the (fixed) shard boundaries.
struct ForLoop {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t shards = 0;
  size_t chunk = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void RunShards(const std::shared_ptr<ForLoop>& loop) {
  while (true) {
    const size_t shard = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= loop->shards) return;
    const size_t begin = shard * loop->chunk;
    const size_t end = std::min(loop->n, begin + loop->chunk);
    if (begin < end) (*loop->body)(begin, end);
    if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        loop->shards) {
      // Last shard: wake the owner. Notify under the lock so the owner
      // cannot miss the signal between its predicate check and wait.
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  // A few shards per thread smooths imbalance (user logs are Zipf-sized);
  // the caller counts as one more worker.
  const size_t max_shards = static_cast<size_t>(num_threads() + 1) * 4;
  const size_t shards = std::min(n, max_shards);
  if (shards <= 1) {
    body(0, n);
    return;
  }
  auto loop = std::make_shared<ForLoop>();
  loop->body = &body;
  loop->n = n;
  loop->shards = shards;
  loop->chunk = (n + shards - 1) / shards;

  const size_t helpers =
      std::min(shards - 1, static_cast<size_t>(num_threads()));
  for (size_t i = 0; i < helpers; ++i) {
    Submit([loop] { RunShards(loop); });
  }
  RunShards(loop);  // the caller works too — nesting cannot deadlock
  std::unique_lock<std::mutex> lock(loop->mu);
  loop->cv.wait(lock, [&loop] {
    return loop->done.load(std::memory_order_acquire) == loop->shards;
  });
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, body);
}

}  // namespace serve
}  // namespace privsan
