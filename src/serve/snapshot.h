// Binary snapshot/restore of a sanitizer session.
//
// A SessionSnapshot (core/session.h) holds everything a restart would
// otherwise recompute: the accumulated raw log, its Condition-1
// preprocessed form, the DP constraint rows, and the last optimal basis
// per objective. Writing it to disk and restoring resumes *warm*: the
// first post-restore solve dual-warm-starts from the stored basis instead
// of cold-solving, and its objective is identical to the pre-snapshot one.
//
// The restored state is bit-identical: the raw and preprocessed logs are
// reconstructed with their exact user/pair id assignment (via the
// SearchLogBuilder Declare methods), and DP-row coefficients and bases are
// round-tripped as raw doubles/bytes. The header is a 7-byte magic plus a
// 1-byte format version; the payload is native-endian — a restart
// artifact, not an interchange format.
//
// Format versions: v1 is the PR 5 layout (logs, DP rows, bases); v2
// appends the tenant's stream-lifecycle state — the (ε, δ) accountant and
// the retention-window timestamps — so a restored or migrated tenant
// resumes with its budget spend and window intact. Writers emit v2;
// readers accept both (a v1 file restores with a fresh accountant).
//
// Corrupt or truncated files fail with IoError; a file with the right
// magic but an unknown format version fails with an IoError naming both
// versions (not as generic corruption); a snapshot whose stored bases do
// not fit the models implied by the restore-time SessionOptions silently
// drops those bases (first solve runs cold, never wrong).
#ifndef PRIVSAN_SERVE_SNAPSHOT_H_
#define PRIVSAN_SERVE_SNAPSHOT_H_

#include <istream>
#include <ostream>
#include <string>

#include "core/session.h"
#include "stream/accountant.h"
#include "stream/window.h"
#include "util/result.h"

namespace privsan {
namespace serve {

// The serve-layer tenant state snapshotted alongside the session: the
// privacy-budget accountant and the retention window (v2 sections).
struct TenantStreamState {
  stream::PrivacyAccountant accountant;
  stream::WindowState window;
};

// Stream-level codec. `stream_state` may be null: WriteSnapshot then
// stores empty accountant/window sections; ReadSnapshot discards them
// (and leaves the output default-constructed for v1 files).
Status WriteSnapshot(std::ostream& out, const SessionSnapshot& snapshot,
                     const TenantStreamState* stream_state = nullptr);
Result<SessionSnapshot> ReadSnapshot(std::istream& in,
                                     TenantStreamState* stream_state = nullptr);

// The SearchLog sub-codec on its own: users, pairs, then (user, pair,
// count) tuples, reconstructed with the exact original id assignment.
// Shared with the wire protocol (net/codec.h), which ships logs inside
// CreateTenant/Append frames using the same byte layout as the snapshot
// payload.
void WriteSearchLog(std::ostream& out, const SearchLog& log);
Result<SearchLog> ReadSearchLog(std::istream& in);

// File-level convenience: snapshot a live session / restore one from disk.
// SaveSnapshot writes atomically enough for a single writer (temp file +
// rename is the caller's concern; SanitizerService snapshots under the
// tenant lock).
Status SaveSnapshot(const SanitizerSession& session, const std::string& path,
                    const TenantStreamState* stream_state = nullptr);
Result<SanitizerSession> RestoreSession(const std::string& path,
                                        SessionOptions options = {},
                                        TenantStreamState* stream_state =
                                            nullptr);

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SNAPSHOT_H_
