// SanitizerService: the long-running, concurrency-safe face of privsan.
//
// The paper's sanitizer is a one-shot batch algorithm; PR 2's
// SanitizerSession made it stateful and incremental but single-threaded.
// This facade lifts sessions into an asynchronous serving layer built
// around the typed request pipeline of serve/api.h:
//
//   * Submit(ServeRequest) -> std::future<ServeResponse>. Requests land on
//     per-tenant FIFO work queues drained by the service's worker pool:
//     one tenant's requests execute in submission order, distinct tenants
//     execute fully in parallel. Append's future resolves once the batch
//     is accepted into the pending queue; Solve futures resolve when the
//     result is ready. CreateTenant/RestoreTenant register the name
//     synchronously inside Submit and run construction as the tenant's
//     first job, so pipelined CREATE -> APPEND -> SOLVE keeps FIFO
//     semantics.
//   * Batched appends. Appends only enqueue; the queue is coalesced into a
//     single merge + incremental re-preprocess + row patch + basis remap
//     per flush (explicit Flush, automatic before a solve, or — with
//     maintenance enabled — in the background on queue depth/age, taking
//     the coalescing work off the query path entirely).
//   * Background maintenance + global memory budget. A service-owned
//     maintenance thread (ServiceOptions::maintenance_interval_ms > 0)
//     flushes aging append queues and enforces
//     ServiceOptions::memory_budget_bytes across all tenants: when the
//     summed resident size exceeds the budget, idle tenants are evicted
//     coldest-first (LRU) to spill snapshots on disk and transparently
//     reloaded — resuming warm from the stored bases — on their next
//     request.
//   * Result cache. Solves are cached per tenant under a canonical
//     (objective, ε, δ, |O|, solver) key and invalidated by the next flush
//     that changes the log.
//   * Snapshot/restore. SaveSnapshot persists a tenant's preprocessed log,
//     DP rows and last optimal bases; RestoreTenant resumes warm after a
//     restart.
//
// The blocking per-verb methods are thin Submit(...).get() wrappers kept
// for source compatibility. Every public method is safe to call from any
// thread at any time.
#ifndef PRIVSAN_SERVE_SERVICE_H_
#define PRIVSAN_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "core/ump.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "serve/api.h"
#include "serve/session_manager.h"
#include "serve/thread_pool.h"
#include "util/result.h"

namespace privsan {
namespace serve {

struct ServiceOptions {
  // Worker threads for the request queues and sharded preprocessing /
  // DP-row builds. <= 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  // Cached solutions per tenant; FIFO eviction; 0 disables caching.
  size_t result_cache_capacity = 128;
  // Defaults for tenants created without explicit options.
  SessionOptions session;

  // --- Background maintenance ---------------------------------------------
  // Tick period of the maintenance thread; 0 disables the thread (flushes
  // then happen only explicitly or before a solve, and the memory budget
  // is not enforced — the pre-PR-5 behavior).
  int maintenance_interval_ms = 0;
  // Flush a tenant's pending appends in the background once the queue
  // holds at least this many batches ...
  size_t flush_queue_depth = 8;
  // ... or once the oldest queued batch is older than this.
  int flush_max_age_ms = 50;
  // After a background flush, re-solve the tenant's most recent solve
  // query off the query path: the flush-invalidated cache entry is
  // repopulated (a repeated-budget query stays O(1) across appends) and
  // the remapped basis is re-optimized, so the next client solve — at any
  // budget — dual-warm-starts from an optimum instead of paying the
  // append's repair pivots inline.
  bool refresh_hot_query_after_flush = true;
  // Global cap on the summed resident size of all tenants (sessions +
  // result caches, as reported by TenantStats::resident_bytes); 0 = no
  // cap. Enforced by the maintenance thread via LRU eviction of idle
  // tenants to spill snapshots.
  uint64_t memory_budget_bytes = 0;
  // Directory for eviction spill snapshots (must exist and be writable).
  std::string spill_directory = ".";

  // --- Admission control and two-lane scheduling --------------------------
  // Per-tenant queue-depth cap: a Submit that would queue job number
  // max_queue_depth+1 on a tenant resolves immediately with
  // kResourceExhausted instead of queueing unboundedly (0 = unlimited).
  // Maintenance jobs and DropTenant are exempt — background flushes keep
  // the backlog shrinking, and an operator can always drop a flooded
  // tenant. Rejections count in TenantStats::admission_rejected.
  size_t max_queue_depth = 0;
  // Route Stats and cache-hit-eligible Solves onto a per-tenant read-only
  // fast lane answered from the cache/counter state alone, so a
  // multi-second Sweep cannot block a cheap probe. Opt-in because it
  // relaxes the strict cross-verb FIFO contract: a fast-lane reply may
  // overtake earlier heavy requests of the same tenant (fast-lane
  // requests still answer in their own submission order, and a Solve
  // whose result could be stale — pending appends, cache miss — always
  // takes the heavy lane).
  bool fast_lane = false;

  // --- Observability ------------------------------------------------------
  // A request whose total latency (queue wait + execution) reaches this
  // threshold lands in the slow-request ring buffer, dumped by the
  // SlowLog verb. <= 0 records every request (useful in tests/smokes).
  double slow_request_threshold_ms = 100.0;
  // Ring capacity; 0 disables the slow log.
  size_t slow_log_capacity = 128;
};

class SanitizerService {
 public:
  explicit SanitizerService(ServiceOptions options = {});
  ~SanitizerService();

  SanitizerService(const SanitizerService&) = delete;
  SanitizerService& operator=(const SanitizerService&) = delete;

  // --- The asynchronous pipeline ------------------------------------------
  // Enqueues `request` on its tenant's FIFO queue and returns immediately.
  // The future resolves with the verb's payload (see serve/api.h); a
  // request naming an unknown tenant resolves NotFound without queueing.
  std::future<ServeResponse> Submit(ServeRequest request);

  // Callback form for continuation-style callers (the network front-end):
  // `done` runs exactly once with the response — on a worker thread when
  // the job executes, or inline when the request fails before queueing
  // (unknown tenant, admission rejection). `done` must not block for
  // long and must not call back into the service synchronously.
  void Submit(ServeRequest request, std::function<void(ServeResponse)> done);

  // --- Blocking wrappers (Submit + get) -----------------------------------
  Status CreateTenant(const std::string& tenant, const SearchLog& initial);
  Status CreateTenant(const std::string& tenant, const SearchLog& initial,
                      SessionOptions options);
  Status DropTenant(const std::string& tenant);
  std::vector<std::string> Tenants() const;

  Status Append(const std::string& tenant, const SearchLog& logs);
  Status Flush(const std::string& tenant);

  Result<UmpSolution> Solve(const std::string& tenant,
                            UtilityObjective objective, const UmpQuery& query);
  Result<SweepResult> Sweep(const std::string& tenant,
                            UtilityObjective objective,
                            const std::vector<UmpQuery>& grid,
                            const SweepOptions& sweep = {});
  Result<SanitizeReport> Sanitize(const std::string& tenant,
                                  const PrivacyParams& privacy);

  Result<TenantStats> Stats(const std::string& tenant);

  // Streaming lifecycle (stream/): remove named users, expire the
  // retention window at an explicit cutoff, read the budget accountant.
  Status RemoveUsers(const std::string& tenant,
                     std::vector<std::string> users);
  Status ExpireWindow(const std::string& tenant, uint64_t cutoff);
  Result<BudgetStatus> Budget(const std::string& tenant);

  Status SaveSnapshot(const std::string& tenant, const std::string& path);
  Status RestoreTenant(const std::string& tenant, const std::string& path);
  Status RestoreTenant(const std::string& tenant, const std::string& path,
                       SessionOptions options);

  // --- Observability ------------------------------------------------------
  // Full Prometheus text scrape (what a MetricsRequest answers): the
  // static per-verb/per-stage families plus scrape-time per-tenant
  // collectors (queue depths, TenantStats counters).
  std::string RenderMetrics() const;
  // Oldest-first slow-request records (what a SlowLogRequest answers).
  std::vector<obs::SlowRequestRecord> SlowLog(size_t limit = 0) const {
    return slow_log_.Snapshot(limit);
  }
  obs::MetricRegistry* registry() { return &registry_; }

  ThreadPool* pool() { return pool_.get(); }

 private:
  // The shared Submit body: exactly one of the return value (null `done`)
  // or the callback (non-null) delivers the response.
  std::future<ServeResponse> SubmitInternal(
      ServeRequest request, std::function<void(ServeResponse)> done);
  // Enqueues a job and wakes a drain worker if none is active. Applies
  // max_queue_depth admission and fast-lane routing.
  std::future<ServeResponse> Enqueue(const std::shared_ptr<Tenant>& tenant,
                                     ServeRequest request, bool maintenance,
                                     std::function<void(ServeResponse)> done);
  // True when the fast lane should take `request` right now (fast_lane on,
  // tenant ready, Stats or cache-hit Solve with no pending appends).
  bool FastEligible(Tenant& tenant, const ServeRequest& request);
  // Pops and executes jobs until the tenant's queue is empty.
  void DrainQueue(std::shared_ptr<Tenant> tenant);
  // Same for the read-only fast lane (under cmu alone); a Solve whose
  // cache entry disappeared since submit re-queues onto the heavy lane.
  void DrainFastQueue(std::shared_ptr<Tenant> tenant);
  // Executes one request under tenant->mu. `maintenance` marks jobs the
  // maintenance thread enqueued (background flushes). `trace` accumulates
  // the request's stage timings (never null on the drain paths).
  ServeResponse Execute(Tenant& tenant, ServeRequest& request,
                        bool maintenance, obs::RequestTrace* trace);
  // The shared solve path (cache lookup, session solve, cache fill); used
  // by SolveRequest execution and hot-query refresh. `charge` bills the
  // tenant's privacy accountant on a cache miss (client solves); the
  // background hot-query refresh passes false — it re-derives an answer
  // the tenant already paid for.
  ServeResponse ExecuteSolve(Tenant& tenant, UtilityObjective objective,
                             const UmpQuery& query, obs::RequestTrace* trace,
                             bool charge = true);
  ServeResponse ExecuteCreate(Tenant& tenant, CreateTenantRequest& request);
  ServeResponse ExecuteRestore(Tenant& tenant, RestoreTenantRequest& request);
  // Shared removal path (RemoveUsers, ExpireWindow, maintenance window
  // expiry): flush, session->RemoveUsers, stats/window/cache upkeep.
  Status ExecuteRemove(Tenant& tenant, const std::vector<std::string>& users,
                       obs::RequestTrace* trace);
  // Charges (ε, δ) on the tenant's accountant; mirrors the accountant
  // position into TenantStats. Returns kBudgetExhausted on refusal.
  Status ChargeBudget(Tenant& tenant, double epsilon, double delta,
                      const char* verb);
  // Reloads an evicted session from its spill snapshot; checks lifecycle.
  Status EnsureLive(Tenant& tenant);
  // Drains the pending-append queue of a locked tenant; flush wall time
  // adds to trace->flush_ms when a trace is supplied.
  Status FlushLocked(Tenant& tenant, obs::RequestTrace* trace = nullptr);
  void InvalidateCache(Tenant& tenant);
  void RefreshResidentBytes(Tenant& tenant);
  SessionOptions WithPool(SessionOptions options);
  std::string SpillPath(const std::string& tenant) const;

  void MaintenanceLoop();
  void MaintenanceTick();
  // Spills one idle tenant to disk; returns bytes freed (0 = not evicted).
  // Reserves the tenant's queue (draining flag) for the duration, so
  // Submit stays wait-free while the snapshot writes.
  uint64_t TryEvict(const std::shared_ptr<Tenant>& tenant);

  // Folds one finished request into the registry (per-verb counters +
  // latency histogram, per-stage histograms) and the slow log.
  // `verb_index` is the ServeRequest variant index; `total_ms` includes
  // the queue wait already stored in `trace`.
  void RecordRequest(size_t verb_index, const std::string& tenant,
                     const Status& status, double total_ms,
                     const obs::RequestTrace& trace);
  // Registers the static metric families and the per-tenant scrape-time
  // collector; runs once from the constructor.
  void RegisterMetrics();

  ServiceOptions options_;
  SessionManager manager_;

  // --- Observability state ------------------------------------------------
  obs::MetricRegistry registry_;
  obs::SlowRequestLog slow_log_;
  // Indexed by ServeRequest variant alternative; registered once so the
  // hot path touches only atomics.
  std::vector<obs::Counter*> requests_total_;
  std::vector<obs::Counter*> request_errors_total_;
  std::vector<obs::LatencyHistogram*> request_duration_;
  obs::LatencyHistogram* stage_queue_wait_ = nullptr;
  obs::LatencyHistogram* stage_flush_ = nullptr;
  obs::LatencyHistogram* stage_solve_ = nullptr;
  obs::LatencyHistogram* stage_cache_lookup_ = nullptr;
  obs::Counter* simplex_iterations_total_ = nullptr;
  obs::Counter* repair_pivots_total_ = nullptr;
  obs::Counter* slow_requests_total_ = nullptr;

  std::mutex maintenance_mu_;
  std::condition_variable maintenance_cv_;
  bool stopping_ = false;
  std::thread maintenance_;

  // Owned indirectly so the destructor can drain it explicitly (workers
  // finish every queued job, resolving all futures) and then clean up
  // eviction spill files — which hold raw input logs and must not outlive
  // the service — while the registry is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SERVICE_H_
