// SanitizerService: the long-running, concurrency-safe face of privsan.
//
// The paper's sanitizer is a one-shot batch algorithm; PR 2's
// SanitizerSession made it stateful and incremental but single-threaded.
// This facade lifts sessions into a serving layer:
//
//   * Multi-tenant. Each tenant (one logical search-log publisher, or one
//     consumer at its own privacy posture) owns a SanitizerSession behind
//     its own lock; distinct tenants solve fully in parallel. One shared
//     ThreadPool shards each tenant's preprocessing and DP-row builds.
//   * Batched appends. Append() only enqueues; the queue is coalesced into
//     a single merge + incremental re-preprocess + row patch + basis remap
//     per flush (explicitly via Flush, or automatically before a solve).
//     K queued appends cost one AppendUsers, not K.
//   * Result cache. Solves are cached per tenant under a canonical
//     (objective, ε, δ, |O|, solver) key — repeated queries at the same
//     budget are O(1) — and the cache is invalidated by the next flush
//     that actually changes the log.
//   * Snapshot/restore. SaveSnapshot persists a tenant's preprocessed log,
//     DP rows and last optimal bases (serve/snapshot.h); RestoreTenant
//     resumes warm after a restart — the first solve dual-warm-starts from
//     the stored basis instead of cold-solving.
//
// Every public method is safe to call from any thread at any time.
#ifndef PRIVSAN_SERVE_SERVICE_H_
#define PRIVSAN_SERVE_SERVICE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/ump.h"
#include "serve/session_manager.h"
#include "serve/thread_pool.h"
#include "util/result.h"

namespace privsan {
namespace serve {

struct ServiceOptions {
  // Worker threads for sharded preprocessing / DP-row builds.
  // <= 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  // Cached solutions per tenant; FIFO eviction; 0 disables caching.
  size_t result_cache_capacity = 128;
  // Defaults for tenants created without explicit options.
  SessionOptions session;
};

class SanitizerService {
 public:
  explicit SanitizerService(ServiceOptions options = {});
  ~SanitizerService() = default;

  SanitizerService(const SanitizerService&) = delete;
  SanitizerService& operator=(const SanitizerService&) = delete;

  // --- Tenant lifecycle ---------------------------------------------------
  // `initial` may be empty (grow the tenant through Append). Options
  // default to ServiceOptions::session; the service's pool is injected
  // either way.
  Status CreateTenant(const std::string& tenant, const SearchLog& initial);
  Status CreateTenant(const std::string& tenant, const SearchLog& initial,
                      SessionOptions options);
  Status DropTenant(const std::string& tenant);
  std::vector<std::string> Tenants() const;

  // --- Appends ------------------------------------------------------------
  // Enqueues user logs; returns immediately. Queued appends coalesce into
  // one incremental AppendUsers at the next flush.
  Status Append(const std::string& tenant, const SearchLog& logs);
  // Drains the tenant's queue now (no-op when empty).
  Status Flush(const std::string& tenant);

  // --- Queries (auto-flush any queued appends first) ----------------------
  Result<UmpSolution> Solve(const std::string& tenant,
                            UtilityObjective objective, const UmpQuery& query);
  Result<SweepResult> Sweep(const std::string& tenant,
                            UtilityObjective objective,
                            const std::vector<UmpQuery>& grid,
                            const SweepOptions& sweep = {});
  Result<SanitizeReport> Sanitize(const std::string& tenant,
                                  const PrivacyParams& privacy);

  Result<TenantStats> Stats(const std::string& tenant) const;

  // --- Snapshot / restore -------------------------------------------------
  // Flushes queued appends, then persists the tenant's session state.
  Status SaveSnapshot(const std::string& tenant, const std::string& path);
  // Creates `tenant` from a snapshot file; fails if the name exists.
  Status RestoreTenant(const std::string& tenant, const std::string& path);
  Status RestoreTenant(const std::string& tenant, const std::string& path,
                       SessionOptions options);

  ThreadPool* pool() { return &pool_; }

 private:
  // Drains the pending queue of a locked tenant.
  Status FlushLocked(Tenant& tenant);
  SessionOptions WithPool(SessionOptions options);

  ServiceOptions options_;
  ThreadPool pool_;
  SessionManager manager_;
};

}  // namespace serve
}  // namespace privsan

#endif  // PRIVSAN_SERVE_SERVICE_H_
