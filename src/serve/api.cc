#include "serve/api.h"

namespace privsan {
namespace serve {

const std::string& RequestTenant(const ServeRequest& request) {
  return std::visit(
      [](const auto& r) -> const std::string& { return r.tenant; }, request);
}

const char* RequestName(const ServeRequest& request) {
  struct Namer {
    const char* operator()(const CreateTenantRequest&) { return "CreateTenant"; }
    const char* operator()(const AppendRequest&) { return "Append"; }
    const char* operator()(const FlushRequest&) { return "Flush"; }
    const char* operator()(const SolveRequest&) { return "Solve"; }
    const char* operator()(const SweepRequest&) { return "Sweep"; }
    const char* operator()(const SanitizeRequest&) { return "Sanitize"; }
    const char* operator()(const StatsRequest&) { return "Stats"; }
    const char* operator()(const SaveSnapshotRequest&) { return "SaveSnapshot"; }
    const char* operator()(const RestoreTenantRequest&) { return "RestoreTenant"; }
    const char* operator()(const DropTenantRequest&) { return "DropTenant"; }
    const char* operator()(const MetricsRequest&) { return "Metrics"; }
    const char* operator()(const SlowLogRequest&) { return "SlowLog"; }
    const char* operator()(const RemoveUsersRequest&) { return "RemoveUsers"; }
    const char* operator()(const ExpireWindowRequest&) { return "ExpireWindow"; }
    const char* operator()(const BudgetStatusRequest&) { return "BudgetStatus"; }
  };
  return std::visit(Namer{}, request);
}

}  // namespace serve
}  // namespace privsan
