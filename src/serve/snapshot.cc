#include "serve/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "lp/basis_io.h"
#include "util/binary_io.h"

namespace privsan {
namespace serve {

namespace {

using binary_io::ReadCount;
using binary_io::ReadScalar;
using binary_io::ReadString;
using binary_io::WriteScalar;
using binary_io::WriteString;

// Header: a 7-byte magic identifying the file as a privsan snapshot,
// followed by a 1-byte format version. Splitting the two gives distinct
// failure modes: a foreign file fails "not a privsan snapshot", while a
// stale- or future-format snapshot fails with both versions named instead
// of surfacing as generic corruption. The byte layout matches the pre-
// versioned header ("PSANSNP" + 0x01), so version-1 files written by older
// builds still read.
constexpr char kMagic[7] = {'P', 'S', 'A', 'N', 'S', 'N', 'P'};
// v1: logs, DP rows, bases. v2 appends the stream-lifecycle sections
// (privacy accountant + retention window); readers accept both.
constexpr uint8_t kSnapshotVersionV1 = 1;
constexpr uint8_t kSnapshotVersion = 2;
// Cap on element counts read from disk, so a corrupted length field fails
// with IoError instead of attempting a multi-gigabyte allocation. Full
// scale is ~10^5 users and ~10^6 tuples; 2^26 leaves two orders of
// magnitude of headroom while keeping the worst corrupt allocation small.
constexpr uint64_t kMaxElements = 1ull << 26;

}  // namespace

void WriteSearchLog(std::ostream& out, const SearchLog& log) {
  WriteScalar<uint64_t>(out, log.num_users());
  for (UserId u = 0; u < log.num_users(); ++u) {
    WriteString(out, log.user_name(u));
  }
  WriteScalar<uint64_t>(out, log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    WriteString(out, log.query_name(log.pair_query(p)));
    WriteString(out, log.url_name(log.pair_url(p)));
  }
  uint64_t num_tuples = 0;
  for (UserId u = 0; u < log.num_users(); ++u) {
    num_tuples += log.UserLogOf(u).size();
  }
  WriteScalar<uint64_t>(out, num_tuples);
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      WriteScalar<uint32_t>(out, u);
      WriteScalar<uint32_t>(out, cell.pair);
      WriteScalar<uint64_t>(out, cell.count);
    }
  }
}

Result<SearchLog> ReadSearchLog(std::istream& in) {
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_users, ReadCount(in, kMaxElements));
  std::vector<std::string> users(num_users);
  for (uint64_t u = 0; u < num_users; ++u) {
    PRIVSAN_ASSIGN_OR_RETURN(users[u], ReadString(in));
  }
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_pairs, ReadCount(in, kMaxElements));
  std::vector<std::pair<std::string, std::string>> pairs(num_pairs);
  for (uint64_t p = 0; p < num_pairs; ++p) {
    PRIVSAN_ASSIGN_OR_RETURN(pairs[p].first, ReadString(in));
    PRIVSAN_ASSIGN_OR_RETURN(pairs[p].second, ReadString(in));
  }

  // Pin the id assignment before replaying tuples: users then pairs, in
  // their original id order (see SearchLogBuilder::DeclareUser).
  SearchLogBuilder builder;
  for (const std::string& user : users) builder.DeclareUser(user);
  for (const auto& [query, url] : pairs) builder.DeclarePair(query, url);

  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_tuples, ReadCount(in, kMaxElements));
  for (uint64_t i = 0; i < num_tuples; ++i) {
    uint32_t user = 0, pair = 0;
    uint64_t count = 0;
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &user));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &pair));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &count));
    if (user >= num_users || pair >= num_pairs || count == 0) {
      return Status::IoError("snapshot corrupt: tuple out of range");
    }
    builder.Add(users[user], pairs[pair].first, pairs[pair].second, count);
  }
  SearchLog log = builder.Build();
  if (log.num_users() != num_users || log.num_pairs() != num_pairs) {
    // Tuples skipped a declared user/pair entirely, or duplicated ids —
    // either way the stored ids would not round-trip.
    return Status::IoError(
        "snapshot corrupt: replayed log does not match its header");
  }
  return log;
}

namespace {

void WriteSystem(std::ostream& out, const DpConstraintSystem& system) {
  WriteScalar<uint64_t>(out, system.num_pairs());
  WriteScalar<uint64_t>(out, system.num_rows());
  for (size_t r = 0; r < system.num_rows(); ++r) {
    WriteScalar<uint32_t>(out, system.RowUser(r));
    const auto row = system.Row(r);
    WriteScalar<uint64_t>(out, row.size());
    for (const DpConstraintEntry& e : row) {
      WriteScalar<uint32_t>(out, e.pair);
      WriteScalar<double>(out, e.log_t);
    }
  }
}

// `num_users` bounds the stored row users — a row naming a user outside
// the preprocessed log would index out of bounds on the next append.
Result<DpConstraintSystem> ReadSystem(std::istream& in, uint64_t num_users) {
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_pairs, ReadCount(in, kMaxElements));
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_rows, ReadCount(in, num_users));
  std::vector<std::vector<DpConstraintEntry>> rows(num_rows);
  std::vector<UserId> row_users(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &row_users[r]));
    if (row_users[r] >= num_users) {
      return Status::IoError("snapshot corrupt: DP row user out of range");
    }
    PRIVSAN_ASSIGN_OR_RETURN(uint64_t entries, ReadCount(in, num_pairs));
    rows[r].resize(entries);
    for (uint64_t i = 0; i < entries; ++i) {
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &rows[r][i].pair));
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &rows[r][i].log_t));
      if (rows[r][i].pair >= num_pairs || !(rows[r][i].log_t > 0.0)) {
        return Status::IoError("snapshot corrupt: bad DP row entry");
      }
    }
  }
  return DpConstraintSystem::FromRows(std::move(rows), std::move(row_users),
                                      num_pairs);
}

}  // namespace

Status WriteSnapshot(std::ostream& out, const SessionSnapshot& snapshot,
                     const TenantStreamState* stream_state) {
  out.write(kMagic, sizeof(kMagic));
  WriteScalar<uint8_t>(out, kSnapshotVersion);
  WriteSearchLog(out, snapshot.raw);
  WriteSearchLog(out, snapshot.log);
  WriteScalar<uint64_t>(out, snapshot.stats.pairs_removed);
  WriteScalar<uint64_t>(out, snapshot.stats.pairs_retained);
  WriteScalar<uint64_t>(out, snapshot.stats.users_dropped);
  WriteScalar<uint64_t>(out, snapshot.stats.clicks_removed);
  WriteScalar<uint64_t>(out, snapshot.stats.clicks_retained);
  WriteSystem(out, snapshot.system);
  WriteScalar<uint64_t>(out, snapshot.bases.size());
  for (const lp::Basis& basis : snapshot.bases) {
    lp::WriteBasis(out, basis);
  }
  // v2 stream-lifecycle sections (always present; empty when the caller
  // tracks no budget/window).
  static const TenantStreamState kEmptyStreamState;
  const TenantStreamState& stream =
      stream_state != nullptr ? *stream_state : kEmptyStreamState;
  stream.accountant.Serialize(out);
  stream.window.Serialize(out);
  if (!out.good()) return Status::IoError("snapshot write failed");
  return Status::OK();
}

Result<SessionSnapshot> ReadSnapshot(std::istream& in,
                                     TenantStreamState* stream_state) {
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a privsan snapshot (bad magic)");
  }
  uint8_t version = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &version));
  if (version != kSnapshotVersionV1 && version != kSnapshotVersion) {
    return Status::IoError(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kSnapshotVersionV1) +
        "-" + std::to_string(kSnapshotVersion) +
        "); re-snapshot the session with the current build");
  }
  SessionSnapshot snapshot;
  PRIVSAN_ASSIGN_OR_RETURN(snapshot.raw, ReadSearchLog(in));
  PRIVSAN_ASSIGN_OR_RETURN(snapshot.log, ReadSearchLog(in));
  uint64_t stat = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stat));
  snapshot.stats.pairs_removed = stat;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stat));
  snapshot.stats.pairs_retained = stat;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stat));
  snapshot.stats.users_dropped = stat;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stat));
  snapshot.stats.clicks_removed = stat;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stat));
  snapshot.stats.clicks_retained = stat;
  PRIVSAN_ASSIGN_OR_RETURN(snapshot.system,
                           ReadSystem(in, snapshot.log.num_users()));
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_bases, ReadCount(in, 16));
  snapshot.bases.resize(num_bases);
  for (uint64_t i = 0; i < num_bases; ++i) {
    PRIVSAN_ASSIGN_OR_RETURN(snapshot.bases[i], lp::ReadBasis(in));
  }
  if (version >= kSnapshotVersion) {
    PRIVSAN_ASSIGN_OR_RETURN(stream::PrivacyAccountant accountant,
                             stream::PrivacyAccountant::Deserialize(in));
    PRIVSAN_ASSIGN_OR_RETURN(stream::WindowState window,
                             stream::WindowState::Deserialize(in));
    if (stream_state != nullptr) {
      stream_state->accountant = std::move(accountant);
      stream_state->window = std::move(window);
    }
  } else if (stream_state != nullptr) {
    *stream_state = {};  // v1 file: fresh accountant, no window history
  }
  return snapshot;
}

Status SaveSnapshot(const SanitizerSession& session, const std::string& path,
                    const TenantStreamState* stream_state) {
  // Write-then-rename so a crash mid-write never destroys the previous
  // good snapshot at `path` (periodic checkpointing overwrites in place).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open snapshot file: " + tmp);
    PRIVSAN_RETURN_IF_ERROR(
        WriteSnapshot(out, session.Snapshot(), stream_state));
    out.close();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IoError("snapshot write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot move snapshot into place: " + path);
  }
  return Status::OK();
}

Result<SanitizerSession> RestoreSession(const std::string& path,
                                        SessionOptions options,
                                        TenantStreamState* stream_state) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open snapshot file: " + path);
  PRIVSAN_ASSIGN_OR_RETURN(SessionSnapshot snapshot,
                           ReadSnapshot(in, stream_state));
  return SanitizerSession::FromSnapshot(std::move(snapshot),
                                        std::move(options));
}

}  // namespace serve
}  // namespace privsan
