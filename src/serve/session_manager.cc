#include "serve/session_manager.h"

namespace privsan {
namespace serve {

Result<std::shared_ptr<Tenant>> SessionManager::Create(
    const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(name, std::make_shared<Tenant>(name));
  if (!inserted) {
    return Status::FailedPrecondition("tenant already exists: " + name);
  }
  return it->second;
}

Result<std::shared_ptr<Tenant>> SessionManager::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + name);
  }
  return it->second;
}

bool SessionManager::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) > 0;
}

Status SessionManager::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(name) == 0) {
    return Status::NotFound("no such tenant: " + name);
  }
  return Status::OK();
}

std::vector<std::string> SessionManager::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::shared_ptr<Tenant>> SessionManager::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Tenant>> all;
  all.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) all.push_back(tenant);
  return all;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace serve
}  // namespace privsan
