// Small string helpers shared across privsan.
#ifndef PRIVSAN_UTIL_STRING_UTIL_H_
#define PRIVSAN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace privsan {

// Splits `input` on `delimiter`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delimiter);

// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict parsers: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

// Fixed-precision formatting helpers used by the bench table printers.
std::string FormatDouble(double value, int precision);
// 12345678 -> "12,345,678".
std::string FormatWithCommas(int64_t value);

}  // namespace privsan

#endif  // PRIVSAN_UTIL_STRING_UTIL_H_
