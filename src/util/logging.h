// Minimal leveled logging and CHECK macros for privsan.
//
// PRIVSAN_LOG(INFO) << "solved in " << n << " pivots";
// PRIVSAN_CHECK(x > 0) << "x must be positive, got " << x;
//
// CHECK failures abort the process; they flag programmer errors (invariant
// violations), never user input errors — those return Status instead.
#ifndef PRIVSAN_UTIL_LOGGING_H_
#define PRIVSAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace privsan {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits the message; aborts if level == kFatal

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

// Makes the ternary in PRIVSAN_CHECK type-check: operator& binds looser than
// operator<<, so streamed values attach to the LogMessage first.
class Voidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace privsan

#define PRIVSAN_LOG(level)                                            \
  ::privsan::internal::LogMessage(::privsan::LogLevel::k##level,      \
                                  __FILE__, __LINE__)

#define PRIVSAN_CHECK(condition)                                      \
  (condition) ? (void)0                                               \
              : ::privsan::internal::Voidify() &                      \
                    (::privsan::internal::LogMessage(                 \
                         ::privsan::LogLevel::kFatal, __FILE__,       \
                         __LINE__)                                    \
                     << "Check failed: " #condition " ")

#define PRIVSAN_DCHECK(condition) PRIVSAN_CHECK(condition)

#endif  // PRIVSAN_UTIL_LOGGING_H_
