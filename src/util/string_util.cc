#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace privsan {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace privsan
