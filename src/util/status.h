// Status: lightweight error propagation for privsan, modeled on the
// Arrow/RocksDB idiom. Functions that can fail return Status (or
// Result<T>, see util/result.h); exceptions never cross public API
// boundaries.
#ifndef PRIVSAN_UTIL_STATUS_H_
#define PRIVSAN_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace privsan {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kInfeasible = 9,   // optimization model has no feasible point
  kUnbounded = 10,   // optimization objective is unbounded
  kBudgetExhausted = 11,  // tenant privacy budget spent (stream/accountant.h)
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

// A Status holds either success (OK) or an error code plus message.
// The OK path stores no allocation; error details live behind a pointer so
// that Status stays one word and cheap to pass by value.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  // Empty string for OK statuses.
  const std::string& message() const;

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr means OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace privsan

// Propagates an error Status from an expression; evaluates it once.
#define PRIVSAN_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::privsan::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

#endif  // PRIVSAN_UTIL_STATUS_H_
