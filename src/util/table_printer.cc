#include "util/table_printer.h"

#include <algorithm>

namespace privsan {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return;

  std::vector<size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t i = 0; i < columns; ++i) {
      os << std::string(widths[i] + 2, '-') << "+";
    }
    os << "\n";
  };

  if (!title_.empty()) os << title_ << "\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace privsan
