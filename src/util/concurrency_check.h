// Debug-only non-concurrency assertions for single-threaded state.
//
// UmpProblem, SanitizerSession and the DpConstraintSystem they rebind are
// deliberately single-threaded: solves mutate cached models in place, so
// two concurrent calls on one instance corrupt state. The supported way to
// use them from many threads is serialization behind a lock — which is
// exactly what serve::SanitizerService does per tenant.
//
// NonConcurrentChecker asserts that contract in debug builds: entering
// while another thread is inside trips an assert. Same-thread reentrancy is
// allowed (F-UMP resolves λ through the session's O-UMP problem). The check
// is best-effort — it catches overlapping calls, not every interleaving —
// and compiles to nothing under NDEBUG.
#ifndef PRIVSAN_UTIL_CONCURRENCY_CHECK_H_
#define PRIVSAN_UTIL_CONCURRENCY_CHECK_H_

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#include <thread>
#endif

namespace privsan {
namespace internal {

class NonConcurrentChecker {
 public:
#ifdef NDEBUG
  void Enter() {}
  void Leave() {}
#else
  void Enter() {
    const std::thread::id self = std::this_thread::get_id();
    if (depth_.fetch_add(1, std::memory_order_acq_rel) == 0) {
      owner_.store(self, std::memory_order_release);
    } else {
      assert(owner_.load(std::memory_order_acquire) == self &&
             "concurrent access to single-threaded sanitizer state; "
             "serialize calls or go through serve::SanitizerService");
    }
  }
  void Leave() { depth_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int> depth_{0};
  std::atomic<std::thread::id> owner_{};
#endif
};

// RAII guard for one public entry point.
class NonConcurrentScope {
 public:
  explicit NonConcurrentScope(NonConcurrentChecker* checker)
      : checker_(checker) {
    checker_->Enter();
  }
  ~NonConcurrentScope() { checker_->Leave(); }

  NonConcurrentScope(const NonConcurrentScope&) = delete;
  NonConcurrentScope& operator=(const NonConcurrentScope&) = delete;

 private:
  NonConcurrentChecker* checker_;
};

}  // namespace internal
}  // namespace privsan

#endif  // PRIVSAN_UTIL_CONCURRENCY_CHECK_H_
