// Fixed-width ASCII table printer used by the bench harness to emit
// paper-style tables (Table 4, Table 5, ...).
#ifndef PRIVSAN_UTIL_TABLE_PRINTER_H_
#define PRIVSAN_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace privsan {

class TablePrinter {
 public:
  // `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title);

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  // Renders with column widths fitted to content.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privsan

#endif  // PRIVSAN_UTIL_TABLE_PRINTER_H_
