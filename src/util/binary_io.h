// Fixed-width binary stream primitives for snapshot files (lp/basis_io,
// serve/snapshot). Values are written in native byte order — snapshots are
// same-machine restart artifacts, not an interchange format.
#ifndef PRIVSAN_UTIL_BINARY_IO_H_
#define PRIVSAN_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/result.h"

namespace privsan {
namespace binary_io {

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadScalar(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in.good()) {
    return Status::IoError("snapshot truncated while reading a scalar");
  }
  return Status::OK();
}

inline void WriteString(std::ostream& out, const std::string& value) {
  WriteScalar<uint64_t>(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

// Guards element counts before any resize, so a corrupted length field
// fails cleanly instead of attempting a multi-gigabyte allocation.
inline Result<uint64_t> ReadCount(std::istream& in, uint64_t max_count) {
  uint64_t count = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &count));
  if (count > max_count) {
    return Status::IoError("snapshot corrupt: implausible element count " +
                           std::to_string(count));
  }
  return count;
}

inline Result<std::string> ReadString(std::istream& in) {
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t size,
                           ReadCount(in, /*max_count=*/1ull << 24));
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (!in.good() && size > 0) {
    return Status::IoError("snapshot truncated while reading a string");
  }
  return value;
}

}  // namespace binary_io
}  // namespace privsan

#endif  // PRIVSAN_UTIL_BINARY_IO_H_
