// Minimal delimited-text reader/writer (TSV by default) used by log io and
// the bench harness. Handles plain fields only — search log fields never
// contain tabs or newlines after normalization, so no quoting layer is
// needed; fields containing the delimiter are rejected on write.
#ifndef PRIVSAN_UTIL_CSV_H_
#define PRIVSAN_UTIL_CSV_H_

#include <functional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace privsan {

class DelimitedWriter {
 public:
  // Creates/truncates `path`. Check `status()` before use.
  DelimitedWriter(const std::string& path, char delimiter = '\t');
  ~DelimitedWriter();

  DelimitedWriter(const DelimitedWriter&) = delete;
  DelimitedWriter& operator=(const DelimitedWriter&) = delete;

  Status status() const { return status_; }

  // Writes one row; fields must not contain the delimiter or newlines.
  Status WriteRow(const std::vector<std::string>& fields);

  // Flushes and closes; returns the first error encountered, if any.
  Status Close();

 private:
  struct Impl;
  Impl* impl_;
  Status status_;
};

// Reads `path`, invoking `row_fn` for every non-empty line (fields split on
// `delimiter`). Lines starting with '#' are skipped as comments. Stops and
// propagates the first non-OK status returned by `row_fn`.
Status ReadDelimitedFile(
    const std::string& path, char delimiter,
    const std::function<Status(size_t line_number,
                               const std::vector<std::string>& fields)>& row_fn);

}  // namespace privsan

#endif  // PRIVSAN_UTIL_CSV_H_
