#include "util/csv.h"

#include <fstream>

#include "util/string_util.h"

namespace privsan {

struct DelimitedWriter::Impl {
  std::ofstream out;
  char delimiter;
};

DelimitedWriter::DelimitedWriter(const std::string& path, char delimiter)
    : impl_(new Impl{std::ofstream(path, std::ios::trunc), delimiter}) {
  if (!impl_->out.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

DelimitedWriter::~DelimitedWriter() { delete impl_; }

Status DelimitedWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return status_;
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    if (field.find(impl_->delimiter) != std::string::npos ||
        field.find('\n') != std::string::npos) {
      return Status::InvalidArgument("field contains delimiter or newline: " +
                                     field);
    }
    if (i > 0) line.push_back(impl_->delimiter);
    line.append(field);
  }
  line.push_back('\n');
  impl_->out << line;
  if (!impl_->out.good()) {
    status_ = Status::IoError("write failed");
  }
  return status_;
}

Status DelimitedWriter::Close() {
  if (impl_->out.is_open()) {
    impl_->out.close();
    if (!impl_->out.good() && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
  }
  return status_;
}

Status ReadDelimitedFile(
    const std::string& path, char delimiter,
    const std::function<Status(size_t, const std::vector<std::string>&)>&
        row_fn) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    PRIVSAN_RETURN_IF_ERROR(row_fn(line_number, Split(line, delimiter)));
  }
  if (in.bad()) {
    return Status::IoError("read failed: " + path);
  }
  return Status::OK();
}

}  // namespace privsan
