#include "util/status.h"

namespace privsan {

namespace {
// Function-local static pointer avoids a namespace-scope std::string with a
// non-trivial destructor.
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->message;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace privsan
