// Result<T>: value-or-Status, the privsan equivalent of arrow::Result.
#ifndef PRIVSAN_UTIL_RESULT_H_
#define PRIVSAN_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/status.h"

namespace privsan {

// Holds either a T (success) or a non-OK Status (failure). Constructing a
// Result from an OK Status is a programming error and aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result<T> constructed from OK Status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  // Returns the error Status, or OK if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  // Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result<T>::value() on error: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace privsan

// Assigns the value of a Result expression to `lhs`, or propagates the error.
// Usage: PRIVSAN_ASSIGN_OR_RETURN(auto x, ComputeX());
#define PRIVSAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define PRIVSAN_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define PRIVSAN_ASSIGN_OR_RETURN_CONCAT(x, y) \
  PRIVSAN_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define PRIVSAN_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  PRIVSAN_ASSIGN_OR_RETURN_IMPL(                                         \
      PRIVSAN_ASSIGN_OR_RETURN_CONCAT(_privsan_result_, __LINE__), lhs,  \
      rexpr)

#endif  // PRIVSAN_UTIL_RESULT_H_
