// Output utility metrics from Section 6 of the paper.
//
//   * Precision / Recall of frequent pairs (Equation 9);
//   * sum / average of frequent-pair support distances (Equation 5);
//   * retained query-url diversity ratio (Figure 4);
//   * DiffRatio histogram between input and sampled output query-url-user
//     histograms (Equation 10 / Figure 6).
#ifndef PRIVSAN_METRICS_UTILITY_METRICS_H_
#define PRIVSAN_METRICS_UTILITY_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

struct PrecisionRecall {
  double precision = 0.0;  // |S0 ∩ S| / |S|; 1.0 when S is empty
  double recall = 0.0;     // |S0 ∩ S| / |S0|; 1.0 when S0 is empty
  size_t input_frequent = 0;   // |S0|
  size_t output_frequent = 0;  // |S|
  size_t common = 0;           // |S0 ∩ S|
};

// S0 = pairs frequent in `input` (support >= s); S = pairs frequent in the
// output histogram x (x_p / |O| >= s). Equation 9.
PrecisionRecall FrequentPairMetrics(const SearchLog& input,
                                    std::span<const uint64_t> x,
                                    double min_support);

// Equation 5: sum over the *input's* frequent pairs of
// | x_p/|O| − c_p/|D| |. Returns 0 when there are no frequent pairs.
double SupportDistanceSum(const SearchLog& input, std::span<const uint64_t> x,
                          double min_support);

// SupportDistanceSum / |S0| (0 when S0 is empty).
double SupportDistanceAverage(const SearchLog& input,
                              std::span<const uint64_t> x, double min_support);

// Fraction of the input's pairs with positive output count (Figure 4's
// "max retained query-url pairs").
double DiversityRatio(std::span<const uint64_t> x);

// Figure 6: per-triplet relative support error between input and sampled
// outputs,
//   DiffRatio(x_ijk, c_ijk) = | (x_ijk/|O| − c_ijk/|D|) / (c_ijk/|D|) |,
// averaged over `num_samples` independently sampled outputs, histogrammed
// over [0%, 100%] in `num_bins` equal bins (ratios above 100% land in the
// last bin, as in the paper's plots whose x-axis tops out at 100%).
struct DiffRatioHistogram {
  std::vector<double> bin_counts;     // averaged triplet counts per bin
  size_t num_triplets = 0;            // triplets of the input
  double fraction_below(double ratio_cap) const;  // e.g. 0.4 for "below 40%"
};

Result<DiffRatioHistogram> ComputeDiffRatioHistogram(
    const SearchLog& input, std::span<const uint64_t> x, int num_samples,
    uint64_t seed, int num_bins = 10);

}  // namespace privsan

#endif  // PRIVSAN_METRICS_UTILITY_METRICS_H_
