#include "metrics/utility_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/sampler.h"
#include "util/logging.h"

namespace privsan {

namespace {
uint64_t TotalOf(std::span<const uint64_t> x) {
  return std::accumulate(x.begin(), x.end(), static_cast<uint64_t>(0));
}
}  // namespace

PrecisionRecall FrequentPairMetrics(const SearchLog& input,
                                    std::span<const uint64_t> x,
                                    double min_support) {
  PRIVSAN_CHECK(x.size() == input.num_pairs());
  PrecisionRecall pr;
  const uint64_t output_total = TotalOf(x);
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    const bool in_s0 = input.PairSupport(p) >= min_support;
    const bool in_s =
        output_total > 0 &&
        static_cast<double>(x[p]) / static_cast<double>(output_total) >=
            min_support;
    if (in_s0) ++pr.input_frequent;
    if (in_s) ++pr.output_frequent;
    if (in_s0 && in_s) ++pr.common;
  }
  pr.precision = pr.output_frequent == 0
                     ? 1.0
                     : static_cast<double>(pr.common) /
                           static_cast<double>(pr.output_frequent);
  pr.recall = pr.input_frequent == 0
                  ? 1.0
                  : static_cast<double>(pr.common) /
                        static_cast<double>(pr.input_frequent);
  return pr;
}

double SupportDistanceSum(const SearchLog& input, std::span<const uint64_t> x,
                          double min_support) {
  PRIVSAN_CHECK(x.size() == input.num_pairs());
  const uint64_t output_total = TotalOf(x);
  double sum = 0.0;
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    if (input.PairSupport(p) < min_support) continue;
    const double output_support =
        output_total == 0 ? 0.0
                          : static_cast<double>(x[p]) /
                                static_cast<double>(output_total);
    sum += std::abs(output_support - input.PairSupport(p));
  }
  return sum;
}

double SupportDistanceAverage(const SearchLog& input,
                              std::span<const uint64_t> x,
                              double min_support) {
  size_t frequent = 0;
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    if (input.PairSupport(p) >= min_support) ++frequent;
  }
  if (frequent == 0) return 0.0;
  return SupportDistanceSum(input, x, min_support) /
         static_cast<double>(frequent);
}

double DiversityRatio(std::span<const uint64_t> x) {
  if (x.empty()) return 0.0;
  size_t retained = 0;
  for (uint64_t v : x) {
    if (v > 0) ++retained;
  }
  return static_cast<double>(retained) / static_cast<double>(x.size());
}

double DiffRatioHistogram::fraction_below(double ratio_cap) const {
  if (num_triplets == 0 || bin_counts.empty()) return 0.0;
  const double bin_width = 1.0 / static_cast<double>(bin_counts.size());
  double below = 0.0, total = 0.0;
  for (size_t b = 0; b < bin_counts.size(); ++b) {
    total += bin_counts[b];
    // A bin counts as "below" if it ends at or before the cap.
    if ((static_cast<double>(b) + 1.0) * bin_width <= ratio_cap + 1e-12) {
      below += bin_counts[b];
    }
  }
  return total == 0.0 ? 0.0 : below / total;
}

Result<DiffRatioHistogram> ComputeDiffRatioHistogram(
    const SearchLog& input, std::span<const uint64_t> x, int num_samples,
    uint64_t seed, int num_bins) {
  if (num_samples <= 0 || num_bins <= 0) {
    return Status::InvalidArgument("num_samples and num_bins must be > 0");
  }
  if (x.size() != input.num_pairs()) {
    return Status::InvalidArgument(
        "count vector size does not match the input's pair count");
  }
  const double input_total = static_cast<double>(input.total_clicks());
  const double output_total = static_cast<double>(TotalOf(x));
  if (input_total == 0 || output_total == 0) {
    return Status::InvalidArgument("input and output must be non-empty");
  }

  DiffRatioHistogram histogram;
  histogram.bin_counts.assign(num_bins, 0.0);
  histogram.num_triplets = input.num_tuples();

  for (int sample = 0; sample < num_samples; ++sample) {
    PRIVSAN_ASSIGN_OR_RETURN(
        std::vector<std::vector<uint64_t>> sampled,
        SampleTripletCounts(input, x, seed + static_cast<uint64_t>(sample)));
    for (PairId p = 0; p < input.num_pairs(); ++p) {
      auto triplets = input.TripletsOf(p);
      for (size_t i = 0; i < triplets.size(); ++i) {
        const double input_support =
            static_cast<double>(triplets[i].count) / input_total;
        const double output_support =
            static_cast<double>(sampled[p][i]) / output_total;
        const double ratio =
            std::abs((output_support - input_support) / input_support);
        int bin = static_cast<int>(ratio * num_bins);
        bin = std::clamp(bin, 0, num_bins - 1);
        histogram.bin_counts[bin] += 1.0;
      }
    }
  }
  for (double& count : histogram.bin_counts) {
    count /= static_cast<double>(num_samples);
  }
  return histogram;
}

}  // namespace privsan
