#include "net/router.h"

#include <chrono>
#include <filesystem>
#include <future>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

namespace privsan {
namespace net {

uint64_t HashRing::Hash(const std::string& key) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  // Raw FNV-1a of short keys differing only in a trailing digit ("n#0"
  // .. "n#63") clusters within a tiny arc, which collapses the ring onto
  // one node. The murmur3 finalizer gives the missing avalanche.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

void HashRing::Add(const std::string& node) {
  for (int i = 0; i < virtual_nodes_; ++i) {
    ring_[Hash(node + '#' + std::to_string(i))] = node;
  }
}

void HashRing::Remove(const std::string& node) {
  for (int i = 0; i < virtual_nodes_; ++i) {
    auto it = ring_.find(Hash(node + '#' + std::to_string(i)));
    if (it != ring_.end() && it->second == node) ring_.erase(it);
  }
}

const std::string& HashRing::Locate(const std::string& key) const {
  auto it = ring_.lower_bound(Hash(key));
  if (it == ring_.end()) it = ring_.begin();  // clockwise wrap
  return it->second;
}

Router::Router(Options options) : options_(std::move(options)) {
  migrations_total_ = registry_.GetCounter(
      "privsan_router_migrations_total",
      "Tenants migrated between backends by ring changes.");
  migration_duration_ = registry_.GetHistogram(
      "privsan_router_migration_duration_seconds",
      "Wall time of one warm tenant migration (save + restore + drop).");
  // Ring state is read at scrape time instead of being tracked by yet
  // another pair of counters the ring code would have to keep honest.
  registry_.AddCollector([this](obs::PrometheusWriter* writer) {
    size_t backends = 0;
    size_t pinned = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      backends = backends_.size();
      pinned = pinned_.size();
    }
    writer->Header("privsan_router_backends",
                   "Backends currently in the ring.", "gauge");
    writer->Value("privsan_router_backends", {},
                  static_cast<double>(backends));
    writer->Header("privsan_router_pinned_tenants",
                   "Tenants pinned to a backend.", "gauge");
    writer->Value("privsan_router_pinned_tenants", {},
                  static_cast<double>(pinned));
  });
}

Router::~Router() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, backend] : backends_) StopBackend(backend.get());
}

Status Router::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_ = HashRing(options_.virtual_nodes);
  for (const uint16_t port : options_.backends) {
    PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Backend> backend,
                             ConnectBackend(port));
    const std::string key = std::to_string(port);
    backends_[key] = std::move(backend);
    ring_.Add(key);
  }
  if (backends_.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  return Status::OK();
}

Result<std::shared_ptr<Router::Backend>> Router::ConnectBackend(
    uint16_t port) {
  PRIVSAN_ASSIGN_OR_RETURN(NetClient client,
                           NetClient::Connect(port, options_.client));
  auto backend = std::make_shared<Backend>();
  backend->port = port;
  backend->client = std::move(client);
  // GetCounter/GetGauge are idempotent, so a backend re-added on the same
  // port resumes its counter series instead of resetting it.
  const obs::LabelSet labels = {{"backend", std::to_string(port)}};
  backend->requests_total = registry_.GetCounter(
      "privsan_router_requests_total",
      "Requests enqueued toward a backend.", labels);
  backend->failures_total = registry_.GetCounter(
      "privsan_router_request_failures_total",
      "Requests answered with a transport error instead of a reply.",
      labels);
  backend->reconnects_total = registry_.GetCounter(
      "privsan_router_reconnects_total",
      "Successful reconnects after a lost backend connection.", labels);
  backend->fail_all_total = registry_.GetCounter(
      "privsan_router_fail_all_total",
      "Connection losses that failed every in-flight request at once.",
      labels);
  backend->inflight = registry_.GetGauge(
      "privsan_router_inflight",
      "Requests queued for or awaiting a reply from a backend.", labels);
  backend->factor_nnz = registry_.GetGauge(
      "privsan_router_backend_factor_nnz",
      "Peak basis-factorization nonzeros seen in this backend's replies.",
      labels);
  backend->max_update_run = registry_.GetGauge(
      "privsan_router_backend_max_update_run",
      "Longest Forrest-Tomlin update run seen in this backend's replies.",
      labels);
  backend->sparse_solves_total = registry_.GetCounter(
      "privsan_router_backend_sparse_solves_total",
      "Hyper-sparse FTRAN/BTRAN solves reported by this backend's "
      "Solve/Sweep replies.",
      labels);
  backend->sparse_ftran_hits_total = registry_.GetCounter(
      "privsan_router_backend_sparse_ftran_hits_total",
      "Hyper-sparse solves that stayed sparse end to end, reported by "
      "this backend's Solve/Sweep replies.",
      labels);
  backend->mean_reach_permille = registry_.GetGauge(
      "privsan_router_backend_mean_reach_permille",
      "Mean reach fraction (permille) of the backend's most recent "
      "hyper-sparse Solve/Sweep reply.",
      labels);
  backend->worker = std::thread([this, raw = backend.get()] {
    WorkerLoop(raw);
  });
  return backend;
}

void Router::StopBackend(Backend* backend) {
  {
    std::lock_guard<std::mutex> lock(backend->mu);
    backend->stop = true;
  }
  backend->cv.notify_all();
  if (backend->worker.joinable()) backend->worker.join();
}

namespace {

// Updates a backend's kernel-health slots from one reply. Solve/Sweep
// replies carry per-solve figures (counters add them); a Stats reply
// carries the tenant's cumulative view (gauges only, or the counters
// would double-count). The peak gauges race benignly across worker
// threads — a lost max costs one scrape of staleness.
void ObserveKernelHealth(obs::Gauge* factor_nnz, obs::Gauge* max_update_run,
                         obs::Counter* sparse_solves,
                         obs::Counter* sparse_hits, obs::Gauge* mean_reach,
                         const serve::ServeResponse& response) {
  const auto bump_peak = [](obs::Gauge* gauge, double v) {
    if (v > gauge->Value()) gauge->Set(v);
  };
  if (const UmpSolution* s = response.solution()) {
    bump_peak(factor_nnz, static_cast<double>(s->stats.factor_nnz));
    bump_peak(max_update_run,
              static_cast<double>(s->stats.max_update_run));
    if (s->stats.sparse_solves > 0) {
      sparse_solves->Increment(s->stats.sparse_solves);
      sparse_hits->Increment(s->stats.sparse_ftran_hits);
      mean_reach->Set(s->stats.mean_reach_fraction * 1000.0);
    }
    return;
  }
  if (const SweepResult* s = response.sweep()) {
    bump_peak(factor_nnz, static_cast<double>(s->factor_nnz));
    bump_peak(max_update_run, static_cast<double>(s->max_update_run));
    if (s->sparse_solves > 0) {
      sparse_solves->Increment(s->sparse_solves);
      sparse_hits->Increment(s->sparse_ftran_hits);
      mean_reach->Set(s->mean_reach_fraction * 1000.0);
    }
    return;
  }
  if (const serve::TenantStats* t = response.stats()) {
    bump_peak(factor_nnz, static_cast<double>(t->factor_nnz));
    bump_peak(max_update_run, static_cast<double>(t->max_update_run));
    if (t->sparse_solves > 0) {
      mean_reach->Set(static_cast<double>(t->mean_reach_permille));
    }
  }
}

}  // namespace

void Router::Enqueue(Backend* backend, Job job) {
  backend->requests_total->Increment();
  backend->inflight->Add(1.0);
  // The metric pointers outlive the backend (the registry owns them), so
  // the decrement and the kernel-health observation are safe even if the
  // reply races a RemoveBackend.
  job.respond = [inflight = backend->inflight,
                 factor_nnz = backend->factor_nnz,
                 max_update_run = backend->max_update_run,
                 sparse_solves = backend->sparse_solves_total,
                 sparse_hits = backend->sparse_ftran_hits_total,
                 mean_reach = backend->mean_reach_permille,
                 inner = std::move(job.respond)](
                    serve::ServeResponse response) {
    inflight->Add(-1.0);
    ObserveKernelHealth(factor_nnz, max_update_run, sparse_solves,
                        sparse_hits, mean_reach, response);
    inner(std::move(response));
  };
  {
    std::lock_guard<std::mutex> lock(backend->mu);
    backend->queue.push_back(std::move(job));
  }
  backend->cv.notify_one();
}

void Router::Submit(serve::ServeRequest request,
                    std::function<void(serve::ServeResponse)> respond) {
  // Observability verbs never reach a backend. METRICS names no tenant, so
  // routing it would both pin the empty string and answer from whichever
  // backend the ring picked; the router is its own scrape target instead.
  // SLOWLOG is inherently per-backend state — tell the operator to scrape
  // the backend directly rather than return one backend's log as if it
  // covered the fleet.
  if (std::holds_alternative<serve::MetricsRequest>(request)) {
    respond(serve::ServeResponse{Status::OK(),
                                 serve::MetricsText{Metrics()}});
    return;
  }
  if (std::holds_alternative<serve::SlowLogRequest>(request)) {
    respond(serve::ServeResponse{
        Status::InvalidArgument(
            "SLOWLOG is per-backend state the router cannot aggregate; "
            "scrape a backend directly"),
        {}});
    return;
  }
  const bool is_drop =
      std::holds_alternative<serve::DropTenantRequest>(request);
  std::shared_ptr<Backend> backend;
  std::string tenant;
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (backends_.empty()) {
      respond(serve::ServeResponse{
          Status::FailedPrecondition("router has no backends"), {}});
      return;
    }
    tenant = serve::RequestTenant(request);
    auto pin = pinned_.find(tenant);
    if (is_drop) {
      // Route the drop to wherever the state lives, then forget the pin:
      // a dropped tenant owns no state worth pinning, and a pin that
      // outlives the state would block RemoveBackend forever (a phantom
      // tenant can never migrate off). If the drop itself fails in
      // transit, the next request re-pins via the ring, which still names
      // this backend while the ring is unchanged.
      key = pin != pinned_.end() ? pin->second : ring_.Locate(tenant);
      if (pin != pinned_.end()) pinned_.erase(pin);
    } else {
      if (pin == pinned_.end()) {
        // First sighting: the ring chooses, the pin remembers.
        pin = pinned_.emplace(tenant, ring_.Locate(tenant)).first;
      }
      key = pin->second;
    }
    backend = backends_.at(key);
  }
  if (!is_drop) {
    // A NotFound reply proves the tenant holds no state on `key`: unpin,
    // so requests naming tenants that never existed cannot grow pinned_
    // without bound.
    respond = [this, tenant, key, inner = std::move(respond)](
                  serve::ServeResponse response) {
      if (response.status.code() == StatusCode::kNotFound) {
        UnpinIfStale(tenant, key);
      }
      inner(std::move(response));
    };
  }
  Enqueue(backend.get(), Job{std::move(request), std::move(respond)});
}

void Router::UnpinIfStale(const std::string& tenant,
                          const std::string& key) {
  // try_lock, not lock: this runs on a backend worker thread, and a ring
  // change may hold mu_ while blocking on that same worker — waiting here
  // would deadlock. A missed cleanup is retried on the next NotFound and
  // swept by MigrateLocked / RemoveBackend anyway.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  auto it = pinned_.find(tenant);
  if (it != pinned_.end() && it->second == key) pinned_.erase(it);
}

void Router::WorkerLoop(Backend* backend) {
  // Responses owed by the backend, oldest first (its replies are FIFO).
  std::deque<std::function<void(serve::ServeResponse)>> awaiting;
  while (true) {
    std::vector<Job> jobs;
    {
      std::unique_lock<std::mutex> lock(backend->mu);
      if (awaiting.empty()) {
        backend->cv.wait(lock, [backend] {
          return backend->stop || !backend->queue.empty();
        });
      }
      if (backend->stop && backend->queue.empty() && awaiting.empty()) {
        return;
      }
      while (!backend->queue.empty()) {
        jobs.push_back(std::move(backend->queue.front()));
        backend->queue.pop_front();
      }
    }
    if (!jobs.empty() && !backend->client.connected()) {
      // The previous batch lost the connection; retry with backoff
      // before failing this one.
      Result<NetClient> reconnected =
          NetClient::Connect(backend->port, options_.client);
      if (reconnected.ok()) {
        backend->client = std::move(*reconnected);
        backend->reconnects_total->Increment();
      }
    }
    for (Job& job : jobs) {
      Result<uint64_t> sent = backend->client.Send(job.request);
      if (sent.ok()) {
        awaiting.push_back(std::move(job.respond));
      } else {
        backend->failures_total->Increment();
        job.respond(serve::ServeResponse{sent.status(), {}});
      }
    }
    if (!awaiting.empty()) {
      Result<serve::ServeResponse> response = backend->client.Receive();
      if (response.ok()) {
        awaiting.front()(std::move(*response));
        awaiting.pop_front();
      } else {
        // The connection died with requests in flight; their replies are
        // unknowable. Fail them all with the transport error.
        backend->fail_all_total->Increment();
        backend->failures_total->Increment(awaiting.size());
        for (auto& respond : awaiting) {
          respond(serve::ServeResponse{response.status(), {}});
        }
        awaiting.clear();
      }
    }
  }
}

serve::ServeResponse Router::CallBackend(Backend* backend,
                                         serve::ServeRequest request) {
  std::promise<serve::ServeResponse> promise;
  std::future<serve::ServeResponse> future = promise.get_future();
  Enqueue(backend,
          Job{std::move(request), [&promise](serve::ServeResponse response) {
                promise.set_value(std::move(response));
              }});
  return future.get();
}

std::vector<Migration> Router::MigrateLocked() {
  std::vector<Migration> migrations;
  for (auto it = pinned_.begin(); it != pinned_.end();) {
    const std::string& tenant = it->first;
    const std::string& pinned_key = it->second;
    const std::string& new_key = ring_.Locate(tenant);
    if (new_key == pinned_key) {
      ++it;
      continue;
    }
    Backend* from = backends_.at(pinned_key).get();
    Backend* to = backends_.at(new_key).get();
    const std::string path =
        options_.migrate_dir + "/" + tenant + ".mig";
    // The snapshot carries the whole session (pending appends are flushed
    // first, the solve basis travels with it), so the tenant resumes warm
    // on its new backend.
    const auto migrate_start = std::chrono::steady_clock::now();
    serve::ServeResponse saved =
        CallBackend(from, serve::SaveSnapshotRequest{tenant, path});
    if (saved.ok()) {
      serve::ServeResponse restored = CallBackend(
          to, serve::RestoreTenantRequest{tenant, path, std::nullopt});
      if (restored.ok()) {
        CallBackend(from, serve::DropTenantRequest{tenant});
        migrations.push_back(Migration{tenant, from->port, to->port});
        it->second = new_key;
        migrations_total_->Increment();
        migration_duration_->RecordSeconds(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          migrate_start)
                .count());
      }
      // On failure the pin stays where the state is — the old backend.
      ++it;
    } else if (saved.status.code() == StatusCode::kNotFound) {
      // A phantom pin: the backend holds no such tenant (a request named
      // a tenant that never existed, or it was dropped behind the
      // router's back). There is nothing to move — unpin, instead of
      // wedging every future RemoveBackend on it.
      it = pinned_.erase(it);
    } else {
      ++it;
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return migrations;
}

Result<std::vector<Migration>> Router::AddBackend(uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = std::to_string(port);
  if (backends_.count(key) > 0) {
    return Status::InvalidArgument("backend " + key + " already routed");
  }
  PRIVSAN_ASSIGN_OR_RETURN(std::shared_ptr<Backend> backend,
                           ConnectBackend(port));
  backends_[key] = std::move(backend);
  ring_.Add(key);
  return MigrateLocked();
}

Result<std::vector<Migration>> Router::RemoveBackend(uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = std::to_string(port);
  auto it = backends_.find(key);
  if (it == backends_.end()) {
    return Status::NotFound("backend " + key + " is not routed");
  }
  if (backends_.size() == 1) {
    // No migration target exists, so MigrateLocked cannot sweep stale
    // pins here. Probe each pin instead: a tenant the backend does not
    // know (phantom name, or dropped behind the router's back) unpins; a
    // live one genuinely blocks the removal.
    for (auto pin = pinned_.begin(); pin != pinned_.end();) {
      if (pin->second != key) {
        ++pin;
        continue;
      }
      const serve::ServeResponse probed =
          CallBackend(it->second.get(), serve::StatsRequest{pin->first});
      if (probed.status.code() == StatusCode::kNotFound) {
        pin = pinned_.erase(pin);
        continue;
      }
      return Status::FailedPrecondition(
          "backend " + key + " still hosts tenants and is the last one");
    }
  }
  ring_.Remove(key);
  std::vector<Migration> migrations = MigrateLocked();
  for (const auto& [tenant, pinned_key] : pinned_) {
    if (pinned_key == key) {
      // A migration failed; the state is still on this backend. Put its
      // ring points back and keep serving rather than strand the tenant.
      ring_.Add(key);
      return Status::Internal("backend " + key +
                              " still hosts tenants after migration");
    }
  }
  StopBackend(it->second.get());
  backends_.erase(it);
  return migrations;
}

size_t Router::backend_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_.size();
}

}  // namespace net
}  // namespace privsan
