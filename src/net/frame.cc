#include "net/frame.h"

#include <cstring>

namespace privsan {
namespace net {

namespace {

template <typename T>
void AppendScalar(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T LoadScalar(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

}  // namespace

const char* FrameVerbName(FrameVerb verb) {
  switch (verb) {
    case FrameVerb::kResponse:
      return "Response";
    case FrameVerb::kCreateTenant:
      return "CreateTenant";
    case FrameVerb::kAppend:
      return "Append";
    case FrameVerb::kFlush:
      return "Flush";
    case FrameVerb::kSolve:
      return "Solve";
    case FrameVerb::kSweep:
      return "Sweep";
    case FrameVerb::kSanitize:
      return "Sanitize";
    case FrameVerb::kStats:
      return "Stats";
    case FrameVerb::kSaveSnapshot:
      return "SaveSnapshot";
    case FrameVerb::kRestoreTenant:
      return "RestoreTenant";
    case FrameVerb::kDropTenant:
      return "DropTenant";
    case FrameVerb::kMetrics:
      return "Metrics";
    case FrameVerb::kSlowLog:
      return "SlowLog";
    case FrameVerb::kRemoveUsers:
      return "RemoveUsers";
    case FrameVerb::kExpireWindow:
      return "ExpireWindow";
    case FrameVerb::kBudgetStatus:
      return "BudgetStatus";
  }
  return "Unknown";
}

void EncodeFrame(const Frame& frame, std::string* out) {
  if (frame.payload.size() > kMaxFramePayload) {
    // Defense in depth — the codecs cap payloads before framing
    // (EncodeRequest/EncodeResponse), so this should be unreachable.
    // Emitting the frame anyway would desync the peer's decoder, and a
    // payload past 4 GiB would silently wrap the u32 length; ship a
    // well-formed header-only error frame instead.
    Frame error;
    error.verb = frame.verb;
    error.status = static_cast<uint16_t>(StatusCode::kResourceExhausted);
    error.request_id = frame.request_id;
    EncodeFrame(error, out);
    return;
  }
  const uint32_t length =
      kFrameHeaderBytes + static_cast<uint32_t>(frame.payload.size());
  out->reserve(out->size() + sizeof(uint32_t) + length);
  AppendScalar<uint32_t>(out, length);
  AppendScalar<uint32_t>(out, kFrameMagic);
  AppendScalar<uint8_t>(out, kProtocolVersion);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(frame.verb));
  AppendScalar<uint16_t>(out, frame.status);
  AppendScalar<uint64_t>(out, frame.request_id);
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  EncodeFrame(frame, &out);
  return out;
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (buffered() < sizeof(uint32_t)) return false;
  const char* base = buffer_.data() + pos_;
  const uint32_t length = LoadScalar<uint32_t>(base);
  if (length < kFrameHeaderBytes) {
    return Status::InvalidArgument(
        "malformed frame: length " + std::to_string(length) +
        " is shorter than the frame header");
  }
  if (length - kFrameHeaderBytes > max_payload_) {
    return Status::InvalidArgument(
        "malformed frame: payload of " +
        std::to_string(length - kFrameHeaderBytes) +
        " bytes exceeds the " + std::to_string(max_payload_) + "-byte cap");
  }
  if (buffered() < sizeof(uint32_t) + length) {
    // Partial frame: compact the consumed prefix away once it dominates
    // the buffer, so a long-lived connection does not grow it unboundedly.
    if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    return false;
  }
  base += sizeof(uint32_t);
  if (LoadScalar<uint32_t>(base) != kFrameMagic) {
    return Status::InvalidArgument(
        "malformed frame: bad magic (not a privsan frame)");
  }
  const uint8_t version = LoadScalar<uint8_t>(base + 4);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version) +
        " (this build speaks version " + std::to_string(kProtocolVersion) +
        ")");
  }
  const uint8_t verb = LoadScalar<uint8_t>(base + 5);
  if (verb > kMaxFrameVerb) {
    return Status::InvalidArgument("malformed frame: unknown verb " +
                                   std::to_string(verb));
  }
  out->verb = static_cast<FrameVerb>(verb);
  out->status = LoadScalar<uint16_t>(base + 6);
  out->request_id = LoadScalar<uint64_t>(base + 8);
  out->payload.assign(base + kFrameHeaderBytes,
                      length - kFrameHeaderBytes);
  pos_ += sizeof(uint32_t) + length;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return true;
}

}  // namespace net
}  // namespace privsan
