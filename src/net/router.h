// Consistent-hash request router: one binary-frame front-end fanning a
// tenant space out over N sanitizer_serverd backends.
//
// Placement is a consistent-hash ring (FNV-1a over "tenant", with
// kVirtualNodes points per backend so load stays balanced at small N).
// The first request that names a tenant pins it to the backend the ring
// chooses at that moment; the pin — not the ring — is authoritative from
// then on, so ring changes never silently strand a tenant's state on the
// old backend. A pin lives exactly as long as the tenant's backend state:
// routing a DropTenant unpins, a NotFound reply unpins (the backend holds
// no such tenant), and migration treats NotFound from SaveSnapshot as
// "already gone" — so stale pins can neither block RemoveBackend nor grow
// pinned_ without bound.
//
// Ring changes migrate state explicitly: AddBackend/RemoveBackend
// recompute each pinned tenant's ring position and, for every tenant
// whose position moved, run SaveSnapshot on the old backend →
// RestoreTenant on the new → DropTenant on the old, through a snapshot
// file in Options::migrate_dir (the backends must share a filesystem with
// the router — they are loopback processes). The restored tenant resumes
// warm: its basis and cache travel in the snapshot. Migration is
// blocking and serialized with routing, so requests observe either the
// old pin or the fully-restored new one, never a half-moved tenant.
//
// Each backend gets one worker thread owning its NetClient: requests
// queue per backend, ship pipelined, and complete in backend reply
// order. A dead backend fails its queued requests with the transport
// error and the worker reconnects with backoff on the next request.
#ifndef PRIVSAN_NET_ROUTER_H_
#define PRIVSAN_NET_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/registry.h"
#include "serve/api.h"
#include "util/result.h"

namespace privsan {
namespace net {

inline constexpr int kVirtualNodes = 64;

// The consistent-hash ring, mapping string keys onto backend names.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = kVirtualNodes)
      : virtual_nodes_(virtual_nodes) {}

  void Add(const std::string& node);
  void Remove(const std::string& node);
  bool empty() const { return ring_.empty(); }

  // The node owning `key`: first ring point clockwise of hash(key).
  // Must not be called on an empty ring.
  const std::string& Locate(const std::string& key) const;

  static uint64_t Hash(const std::string& key);  // FNV-1a

 private:
  int virtual_nodes_;
  std::map<uint64_t, std::string> ring_;
};

// One migrated tenant, for the admin log.
struct Migration {
  std::string tenant;
  uint16_t from = 0;
  uint16_t to = 0;
};

class Router {
 public:
  struct Options {
    std::vector<uint16_t> backends;  // ports on 127.0.0.1
    int virtual_nodes = kVirtualNodes;
    // Where migration snapshots are written (and deleted afterwards).
    std::string migrate_dir = ".";
    ClientOptions client;
  };

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Connects every configured backend; fails if any is unreachable.
  Status Start();

  // Routes one request; `respond` fires exactly once, from the backend
  // worker thread (or inline when no backend is available). Thread-safe;
  // never blocks on the network — this is NetServer's FrameHandler.
  void Submit(serve::ServeRequest request,
              std::function<void(serve::ServeResponse)> respond);

  // Ring changes; blocking (requests submitted meanwhile wait). Return
  // the tenants that moved.
  Result<std::vector<Migration>> AddBackend(uint16_t port);
  Result<std::vector<Migration>> RemoveBackend(uint16_t port);

  size_t backend_count() const;

  // Router-side Prometheus scrape: per-backend in-flight / reconnect /
  // fail-all counters, migration counts and durations, ring state. This
  // is what a MetricsRequest submitted to the router answers (the verb is
  // intercepted, not forwarded — each backend exports its own metrics).
  std::string Metrics() const { return registry_.RenderPrometheusText(); }

  // The router's own registry, so the serving front-end can co-register
  // its transport metrics (writev flush batching) on the same scrape.
  obs::MetricRegistry* registry() { return &registry_; }

 private:
  struct Job {
    serve::ServeRequest request;
    std::function<void(serve::ServeResponse)> respond;
  };
  struct Backend {
    uint16_t port = 0;
    NetClient client;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    bool stop = false;
    std::thread worker;

    // Registry-owned metric slots, labeled {backend="<port>"}; registered
    // by ConnectBackend so the hot paths touch only atomics.
    obs::Counter* requests_total = nullptr;
    obs::Counter* failures_total = nullptr;
    obs::Counter* reconnects_total = nullptr;
    obs::Counter* fail_all_total = nullptr;
    obs::Gauge* inflight = nullptr;
    // Kernel health observed from this backend's Solve/Sweep/Stats
    // replies as they pass through the router, so one routerd scrape
    // shows which backend's LP kernels degrade without scraping each
    // backend individually.
    obs::Gauge* factor_nnz = nullptr;
    obs::Gauge* max_update_run = nullptr;
    obs::Counter* sparse_solves_total = nullptr;
    obs::Counter* sparse_ftran_hits_total = nullptr;
    obs::Gauge* mean_reach_permille = nullptr;
  };

  void WorkerLoop(Backend* backend);
  // Queues one job on a backend, counting it and holding the in-flight
  // gauge up until its respond fires. Every enqueue goes through here.
  void Enqueue(Backend* backend, Job job);
  // Sends `request` to one specific backend and waits for its response —
  // the migration path (routing would re-hash).
  serve::ServeResponse CallBackend(Backend* backend,
                                   serve::ServeRequest request);
  // Moves every pinned tenant whose ring position changed to its new
  // home; unpins tenants the old backend no longer knows. Caller holds
  // mu_.
  std::vector<Migration> MigrateLocked();
  // Erases the pin for `tenant` if it still names `key`; called from
  // worker threads on NotFound replies, so it only try-locks mu_ (a
  // migration blocked on that worker may hold it).
  void UnpinIfStale(const std::string& tenant, const std::string& key);
  Result<std::shared_ptr<Backend>> ConnectBackend(uint16_t port);
  static void StopBackend(Backend* backend);

  Options options_;

  obs::MetricRegistry registry_;
  obs::Counter* migrations_total_ = nullptr;
  obs::LatencyHistogram* migration_duration_ = nullptr;

  mutable std::mutex mu_;  // ring + pins + backend set (not the queues)
  HashRing ring_{kVirtualNodes};
  std::map<std::string, std::shared_ptr<Backend>> backends_;  // by ring key
  std::map<std::string, std::string> pinned_;  // tenant -> ring key
};

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_ROUTER_H_
