// The serverd line protocol, factored out of the daemon so every
// transport speaks it identically: sanitizer_serverd's stdin pipeline,
// its --protocol=text TCP mode, and sanitizer_netclient (which parses the
// same scripts and executes them over binary frames).
//
// One input line maps to one reply ("OK ..." or "ERR ..."); blank
// lines and #-comments reply with the empty string, which transports
// treat as "print nothing". Two observability commands answer with one
// multi-line reply instead of a single line: METRICS (the Prometheus
// scrape, terminated by its "# EOF" comment) and SLOWLOG (an "OK
// slowlog ..." summary followed by one "SLOW ..." line per record).
// Commands that need several ServeRequests to
// answer one line (SOLVE's cached= flag is a Stats/Solve/Stats sandwich
// on the tenant's FIFO queue) aggregate their responses before
// formatting, so the protocol stays pipelined: a driver may hand over N
// lines without waiting and emit the N replies in order.
//
// Execution is pluggable: the backend is any SubmitFn with the callback
// shape of SanitizerService::Submit — the daemon passes the service
// directly, the net client passes a function that ships frames. Replies
// are produced exactly once per line, from whatever thread resolves the
// last outstanding response.
#ifndef PRIVSAN_NET_TEXT_PROTOCOL_H_
#define PRIVSAN_NET_TEXT_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/api.h"

namespace privsan {
namespace serve {
class ThreadPool;
}
}

namespace privsan {
namespace net {

// Sanity caps for GEN: a count beyond these is a malformed line (for
// example "-1" wrapped to 2^64-1), answered with ERR instead of handed to
// the generator where it would throw std::length_error and kill the
// daemon mid-pipeline.
inline constexpr uint64_t kMaxGenUsers = 1u << 22;
inline constexpr uint64_t kMaxGenEvents = 1u << 26;

class TextProtocol {
 public:
  // Receives the reply line (no trailing newline; empty = print nothing).
  using Done = std::function<void(std::string reply)>;
  // The execution backend: must invoke the response callback exactly once.
  using SubmitFn = std::function<void(
      serve::ServeRequest request,
      std::function<void(serve::ServeResponse)> respond)>;
  // TENANTS backend; when null the command answers ERR (a remote client
  // has no registry view — the wire protocol is per-tenant).
  using ListTenantsFn = std::function<std::vector<std::string>()>;

  TextProtocol(SubmitFn submit, ListTenantsFn list_tenants = nullptr,
               serve::ThreadPool* gen_pool = nullptr)
      : submit_(std::move(submit)),
        list_tenants_(std::move(list_tenants)),
        gen_pool_(gen_pool) {}

  // Parses and executes one line; `done` fires exactly once. Returns
  // false when the line is QUIT (after acking "OK bye") — the transport
  // decides what quitting means (stdin stops reading; TCP keeps the
  // connection for the client to close).
  bool Handle(const std::string& line, Done done);

 private:
  using Formatter =
      std::function<std::string(std::vector<serve::ServeResponse>&)>;
  // Submits the batch through the backend and formats once every
  // response has arrived.
  void SubmitMany(std::vector<serve::ServeRequest> requests,
                  Formatter format, Done done);

  SubmitFn submit_;
  ListTenantsFn list_tenants_;
  serve::ThreadPool* gen_pool_;
};

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_TEXT_PROTOCOL_H_
