// The epoll serving front-end: nonblocking accept/read/write on one loop
// thread, request execution on the SanitizerService worker pool.
//
// Binary mode (the default protocol) speaks net/frame.h frames: each
// decoded request becomes one SanitizerService::Submit(request, done)
// call; the completion callback encodes the response frame on the worker
// thread and hands it back to the loop through an eventfd. Replies are
// written in per-connection request order — a slot is queued per request
// at decode time, and only the contiguous done-prefix of the slot queue
// flushes — so a pipelined client can match replies positionally, with
// the echoed request_id as a cross-check.
//
// Text mode serves a line protocol instead: the owner supplies a handler
// invoked on the loop thread for every complete input line, which must
// call its `done(reply)` exactly once (from any thread). Replies flush in
// line order through the same slot queue. sanitizer_serverd uses this for
// --protocol=text compatibility with the stdin pipeline.
//
// Error containment, binary mode: a frame that parses at the frame layer
// but fails request decoding answers an error frame (echoed request_id,
// status in the header) and the connection continues; a frame-layer error
// (bad magic/length — the stream has lost sync) answers one error frame
// with request_id 0, then the connection drains its pending replies and
// closes. EOF with requests still in flight likewise drains before
// closing, so a client that sends a burst and shutdown(SHUT_WR) still
// collects every reply.
#ifndef PRIVSAN_NET_SERVER_H_
#define PRIVSAN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "obs/registry.h"
#include "serve/service.h"
#include "util/result.h"

namespace privsan {
namespace net {

struct ServerOptions {
  // 0 = pick an ephemeral port (read it back with port() after Start).
  uint16_t port = 0;
  // Frame payload cap for binary mode (hostile lengths reject early).
  size_t max_frame_payload = kMaxFramePayload;
  // Line length cap for text mode.
  size_t max_text_line = 1u << 20;
  // Per-connection backpressure: once this many replies are pending, or
  // the unflushed out-buffer backlog exceeds this many bytes, the
  // connection stops reading (EPOLLIN unregistered) until the backlog
  // drains — so a client that pipelines without reading cannot grow
  // server-side queues without bound. 0 = unlimited. Soft caps: checked
  // between read chunks, so a single chunk of tiny frames may overshoot.
  size_t max_pending_replies = 1024;
  size_t max_outbuf_bytes = 8u << 20;
  // Optional scrape target (not owned; must outlive the server). When set,
  // Start() registers the writev flush-batching counters on it.
  obs::MetricRegistry* registry = nullptr;
};

class NetServer {
 public:
  // Binary frame server over `service` (not owned; must outlive Serve()).
  NetServer(serve::SanitizerService* service, ServerOptions options = {});

  // Binary frame server over an arbitrary executor with the callback
  // shape of SanitizerService::Submit — the router plugs in here, routing
  // each decoded request to a backend instead of a local service. The
  // handler runs on the loop thread and must not block; `respond` must be
  // called exactly once, from any thread.
  using FrameHandler = std::function<void(
      serve::ServeRequest request,
      std::function<void(serve::ServeResponse)> respond)>;
  NetServer(FrameHandler handler, ServerOptions options = {});

  // Text line server. `handler` runs on the loop thread per complete line
  // (newline stripped) and must call done(reply) exactly once, from any
  // thread; the reply is sent verbatim (include the trailing newline).
  using TextDone = std::function<void(std::string reply)>;
  using TextHandler = std::function<void(std::string line, TextDone done)>;
  NetServer(TextHandler handler, ServerOptions options = {});

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds and listens; port() is valid afterwards.
  Status Start();
  uint16_t port() const { return port_; }

  // The blocking serve loop; returns cleanly after Shutdown(). Calls
  // Start() first if the caller did not.
  Status Serve();

  // Thread-safe; wakes the loop and makes Serve() return.
  void Shutdown();

  // Flush-batching figures (loop-thread maintained; read them after
  // Serve() returns, or accept a stale snapshot): gather-write syscalls
  // issued, reply buffers they carried, and the write syscalls a
  // one-write-per-reply flush would have needed on top (buffers - calls).
  uint64_t writev_calls() const { return writev_calls_; }
  uint64_t writev_buffers() const { return writev_buffers_; }
  uint64_t writev_syscalls_saved() const {
    return writev_buffers_ - writev_calls_;
  }

 private:
  struct Slot;
  struct Connection;
  // Completion state shared with worker-thread callbacks; outlives the
  // server so a late callback never touches freed memory.
  struct Shared;

  void AcceptAll();
  void ProcessReady();
  void HandleConnectionEvent(int fd, uint32_t events);
  void ReadInput(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void HandleLine(const std::shared_ptr<Connection>& conn, std::string line);
  // Moves the contiguous done-prefix of the slot queue into the out
  // buffer, writes what the socket accepts, closes drained connections.
  void FlushConnection(const std::shared_ptr<Connection>& conn);
  // True when the connection's reply backlog exceeds the ServerOptions
  // backpressure caps (loop thread only).
  bool Backpressured(const Connection& conn) const;
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  // A worker thread finished a reply: publish it and wake the loop.
  // Static so completion callbacks can outlive the server (they hold the
  // Shared state, not `this`).
  static void Complete(const std::shared_ptr<Shared>& shared,
                       const std::shared_ptr<Connection>& conn,
                       const std::shared_ptr<Slot>& slot, std::string bytes);

  FrameHandler frame_handler_;  // binary mode
  TextHandler text_handler_;    // text mode
  ServerOptions options_;

  EventLoop loop_;
  std::shared_ptr<Shared> shared_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::map<int, std::shared_ptr<Connection>> connections_;
  std::atomic<bool> stop_{false};

  // writev flush batching (loop thread only; mirrored into the registry
  // counters when ServerOptions::registry is set).
  uint64_t writev_calls_ = 0;
  uint64_t writev_buffers_ = 0;
  obs::Counter* writev_calls_total_ = nullptr;
  obs::Counter* writev_saved_total_ = nullptr;
};

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_SERVER_H_
