#include "net/client.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "net/event_loop.h"

namespace privsan {
namespace net {

NetClient::~NetClient() { Close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(other.fd_),
      receive_timeout_ms_(other.receive_timeout_ms_),
      next_id_(other.next_id_),
      inflight_(std::move(other.inflight_)),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    receive_timeout_ms_ = other.receive_timeout_ms_;
    next_id_ = other.next_id_;
    inflight_ = std::move(other.inflight_);
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inflight_.clear();
}

Result<NetClient> NetClient::Connect(uint16_t port, ClientOptions options) {
  int backoff = options.initial_backoff_ms;
  Status last = Status::IoError("connect: no attempts configured");
  for (int attempt = 0; attempt < options.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, options.max_backoff_ms);
    }
    Result<int> fd = ConnectTcp(port);
    if (fd.ok()) {
      NetClient client;
      client.fd_ = *fd;
      client.receive_timeout_ms_ = options.receive_timeout_ms;
      return client;
    }
    last = fd.status();
  }
  return last;
}

Result<uint64_t> NetClient::Send(const serve::ServeRequest& request) {
  PRIVSAN_ASSIGN_OR_RETURN(Frame frame,
                           EncodeRequest(request, next_id_));
  PRIVSAN_RETURN_IF_ERROR(SendFrame(frame));
  inflight_.push_back(next_id_);
  return next_id_++;
}

Result<serve::ServeResponse> NetClient::Receive() {
  if (inflight_.empty()) {
    return Status::FailedPrecondition("Receive with no request in flight");
  }
  const uint64_t expected = inflight_.front();
  PRIVSAN_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  inflight_.pop_front();
  // Replies arrive in send order; a mismatched id means the stream (or
  // the server) lost sync — fail loudly rather than misattribute.
  if (frame.request_id != expected) {
    Close();
    return Status::Internal(
        "response id " + std::to_string(frame.request_id) +
        " does not match oldest in-flight request " +
        std::to_string(expected));
  }
  return DecodeResponse(frame);
}

Result<serve::ServeResponse> NetClient::Call(
    const serve::ServeRequest& request) {
  PRIVSAN_RETURN_IF_ERROR(Send(request).status());
  return Receive();
}

Status NetClient::SendFrame(const Frame& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const std::string wire = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IoError(std::string("write: ") + std::strerror(errno));
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> NetClient::ReceiveFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const bool bounded = receive_timeout_ms_ > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bounded ? receive_timeout_ms_ : 0);
  Frame frame;
  while (true) {
    PRIVSAN_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
    if (complete) return frame;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        Close();
        return Status::IoError(
            "read timed out after " + std::to_string(receive_timeout_ms_) +
            "ms waiting for a response");
      }
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0) {
        if (errno == EINTR) continue;
        const Status status =
            Status::IoError(std::string("poll: ") + std::strerror(errno));
        Close();
        return status;
      }
      if (ready == 0) continue;  // the loop re-checks the deadline
    }
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IoError(std::string("read: ") + std::strerror(errno));
      Close();
      return status;
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed mid-response");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace privsan
