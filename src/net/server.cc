#include "net/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/codec.h"

namespace privsan {
namespace net {

// One queued reply, in request order. `done`/`bytes` are written by
// worker-thread completion callbacks and read by the loop thread, both
// under Shared::mu.
struct NetServer::Slot {
  bool done = false;
  std::string bytes;  // the encoded reply (frame or text line)
};

struct NetServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}

  int fd;  // -1 once closed (late completions then just drop)
  FrameDecoder decoder{kMaxFramePayload};
  std::string textbuf;  // text mode: bytes of the unfinished last line
  std::string outbuf;
  size_t outpos = 0;
  std::deque<std::shared_ptr<Slot>> pending;
  // No more reads (EOF or unrecoverable decode error); the connection
  // closes once every pending reply has flushed.
  bool closing = false;
  bool wants_read = true;    // EPOLLIN currently registered
  bool wants_write = false;  // EPOLLOUT currently registered
};

struct NetServer::Shared {
  std::mutex mu;
  bool alive = true;  // false once the NetServer is destroyed
  std::vector<std::shared_ptr<Connection>> ready;
  WakeFd wake;
};

NetServer::NetServer(serve::SanitizerService* service, ServerOptions options)
    : NetServer(
          FrameHandler([service](
                           serve::ServeRequest request,
                           std::function<void(serve::ServeResponse)> respond) {
            service->Submit(std::move(request), std::move(respond));
          }),
          options) {}

NetServer::NetServer(FrameHandler handler, ServerOptions options)
    : frame_handler_(std::move(handler)),
      options_(options),
      shared_(std::make_shared<Shared>()) {}

NetServer::NetServer(TextHandler handler, ServerOptions options)
    : text_handler_(std::move(handler)),
      options_(options),
      shared_(std::make_shared<Shared>()) {}

NetServer::~NetServer() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->alive = false;
    shared_->ready.clear();
  }
  for (auto& [fd, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status NetServer::Start() {
  if (listen_fd_ >= 0) return Status::OK();
  if (!loop_.valid() || !shared_->wake.valid()) {
    return Status::IoError("event loop setup failed");
  }
  PRIVSAN_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.port, &port_));
  PRIVSAN_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  PRIVSAN_RETURN_IF_ERROR(
      loop_.Add(listen_fd_, EPOLLIN, static_cast<uint64_t>(listen_fd_)));
  PRIVSAN_RETURN_IF_ERROR(
      loop_.Add(shared_->wake.fd(), EPOLLIN,
                static_cast<uint64_t>(shared_->wake.fd())));
  if (options_.registry != nullptr) {
    writev_calls_total_ = options_.registry->GetCounter(
        "privsan_server_writev_calls_total",
        "Gather-write syscalls issued by reply flushing.");
    writev_saved_total_ = options_.registry->GetCounter(
        "privsan_server_writev_syscalls_saved_total",
        "Write syscalls avoided by coalescing pipelined replies into one "
        "writev (buffers gathered beyond the first, per call).");
  }
  return Status::OK();
}

Status NetServer::Serve() {
  PRIVSAN_RETURN_IF_ERROR(Start());
  while (!stop_.load(std::memory_order_acquire)) {
    Result<int> polled = loop_.Poll(
        /*timeout_ms=*/500, [this](uint64_t tag, uint32_t events) {
          const int fd = static_cast<int>(tag);
          if (fd == listen_fd_) {
            AcceptAll();
          } else if (fd == shared_->wake.fd()) {
            shared_->wake.Drain();
            ProcessReady();
          } else {
            HandleConnectionEvent(fd, events);
          }
        });
    if (!polled.ok()) return polled.status();
  }
  // Drain the wake queue once more so late completions do not linger in
  // `ready` holding connection references.
  ProcessReady();
  return Status::OK();
}

void NetServer::Shutdown() {
  stop_.store(true, std::memory_order_release);
  shared_->wake.Notify();
}

void NetServer::AcceptAll() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; keep serving
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    conn->decoder = FrameDecoder(options_.max_frame_payload);
    if (!loop_.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)).ok()) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
  }
}

void NetServer::ProcessReady() {
  std::vector<std::shared_ptr<Connection>> ready;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    ready.swap(shared_->ready);
  }
  for (const std::shared_ptr<Connection>& conn : ready) {
    if (conn->fd >= 0) FlushConnection(conn);
  }
}

void NetServer::HandleConnectionEvent(int fd, uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConnection(conn);
    return;
  }
  if ((events & EPOLLIN) != 0) ReadInput(conn);
  if (conn->fd >= 0 && (events & EPOLLOUT) != 0) FlushConnection(conn);
}

void NetServer::ReadInput(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  // Backpressured connections stop draining the socket: unread bytes stay
  // in the kernel buffer (eventually stalling the peer's sends), and
  // UpdateInterest below deregisters EPOLLIN until the backlog flushes.
  while (!conn->closing && !Backpressured(*conn)) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    if (n == 0) {
      // EOF: no more requests, but drain every queued reply first.
      conn->closing = true;
      break;
    }
    if (frame_handler_) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      Frame frame;
      while (true) {
        Result<bool> next = conn->decoder.Next(&frame);
        if (!next.ok()) {
          // Frame-layer corruption: the stream has lost sync. Report once
          // (request_id 0 — there is no trustworthy id) and close after
          // the pending replies drain.
          auto slot = std::make_shared<Slot>();
          conn->pending.push_back(slot);
          Complete(shared_, conn, slot,
                   EncodeFrame(EncodeResponse(
                       {next.status(), {}}, /*request_id=*/0)));
          conn->closing = true;
          break;
        }
        if (!*next) break;
        HandleFrame(conn, std::move(frame));
      }
    } else {
      conn->textbuf.append(buf, static_cast<size_t>(n));
      size_t start = 0;
      while (true) {
        const size_t eol = conn->textbuf.find('\n', start);
        if (eol == std::string::npos) break;
        std::string line = conn->textbuf.substr(start, eol - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = eol + 1;
        HandleLine(conn, std::move(line));
      }
      conn->textbuf.erase(0, start);
      if (conn->textbuf.size() > options_.max_text_line) {
        auto slot = std::make_shared<Slot>();
        conn->pending.push_back(slot);
        Complete(shared_, conn, slot, "ERR line too long\n");
        conn->closing = true;
      }
    }
  }
  FlushConnection(conn);
}

void NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            Frame frame) {
  auto slot = std::make_shared<Slot>();
  conn->pending.push_back(slot);
  const uint64_t request_id = frame.request_id;
  Result<serve::ServeRequest> request = DecodeRequest(frame);
  if (!request.ok()) {
    // Well-framed but undecodable: answer the error in order and keep the
    // connection (the stream itself is still in sync).
    Complete(shared_, conn, slot,
             EncodeFrame(EncodeResponse({request.status(), {}}, request_id)));
    return;
  }
  // The callback runs on a service worker (or inline for pre-queue
  // failures); encoding happens there, off the loop thread.
  std::shared_ptr<Shared> shared = shared_;
  frame_handler_(
      std::move(*request),
      [shared, conn, slot, request_id](serve::ServeResponse response) {
        Complete(shared, conn, slot,
                 EncodeFrame(EncodeResponse(response, request_id)));
      });
}

void NetServer::HandleLine(const std::shared_ptr<Connection>& conn,
                           std::string line) {
  auto slot = std::make_shared<Slot>();
  conn->pending.push_back(slot);
  std::shared_ptr<Shared> shared = shared_;
  text_handler_(std::move(line), [shared, conn, slot](std::string reply) {
    Complete(shared, conn, slot, std::move(reply));
  });
}

void NetServer::FlushConnection(const std::shared_ptr<Connection>& conn) {
  // Gather the contiguous done-prefix of the slot queue without copying:
  // the reply strings ride as iovec entries behind the unflushed out-buffer
  // tail, so a pipelined burst flushes in one writev instead of one write
  // (or one memcpy into outbuf) per reply.
  constexpr int kFlushIovCap = 64;
  std::vector<std::string> batch;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    while (!conn->pending.empty() && conn->pending.front()->done) {
      if (!conn->pending.front()->bytes.empty()) {
        batch.push_back(std::move(conn->pending.front()->bytes));
      }
      conn->pending.pop_front();
    }
  }
  size_t next = 0;       // first batch reply not yet fully written
  size_t front_off = 0;  // bytes of batch[next] already written
  while (true) {
    struct iovec iov[kFlushIovCap];
    int iovcnt = 0;
    if (conn->outpos < conn->outbuf.size()) {
      iov[iovcnt].iov_base = conn->outbuf.data() + conn->outpos;
      iov[iovcnt].iov_len = conn->outbuf.size() - conn->outpos;
      ++iovcnt;
    }
    for (size_t k = next; k < batch.size() && iovcnt < kFlushIovCap; ++k) {
      const size_t off = k == next ? front_off : 0;
      iov[iovcnt].iov_base = batch[k].data() + off;
      iov[iovcnt].iov_len = batch[k].size() - off;
      ++iovcnt;
    }
    if (iovcnt == 0) break;
    const ssize_t n = ::writev(conn->fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    ++writev_calls_;
    writev_buffers_ += static_cast<uint64_t>(iovcnt);
    if (writev_calls_total_ != nullptr) {
      writev_calls_total_->Increment();
      if (iovcnt > 1) {
        writev_saved_total_->Increment(static_cast<uint64_t>(iovcnt - 1));
      }
    }
    // Advance through what the socket took: the outbuf tail first, then
    // whole (or partial) batch replies in order.
    size_t left = static_cast<size_t>(n);
    if (conn->outpos < conn->outbuf.size()) {
      const size_t take =
          std::min(conn->outbuf.size() - conn->outpos, left);
      conn->outpos += take;
      left -= take;
    }
    while (left > 0) {
      const size_t take = std::min(batch[next].size() - front_off, left);
      front_off += take;
      left -= take;
      if (front_off == batch[next].size()) {
        ++next;
        front_off = 0;
      }
    }
  }
  if (conn->outpos >= conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outpos = 0;
  } else if (conn->outpos > (1u << 16)) {
    conn->outbuf.erase(0, conn->outpos);
    conn->outpos = 0;
  }
  // Whatever the socket would not take parks in outbuf, in order, for the
  // next EPOLLOUT round.
  for (size_t k = next; k < batch.size(); ++k) {
    conn->outbuf.append(batch[k], k == next ? front_off : 0,
                        std::string::npos);
  }
  bool idle;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    idle = conn->pending.empty();
  }
  if (conn->closing && idle && conn->outbuf.empty()) {
    CloseConnection(conn);
    return;
  }
  UpdateInterest(conn);
}

bool NetServer::Backpressured(const Connection& conn) const {
  // `pending` and `outbuf` are structurally mutated on the loop thread
  // only (workers touch Slot contents, under Shared::mu), so reading
  // their sizes here needs no lock.
  if (options_.max_pending_replies != 0 &&
      conn.pending.size() >= options_.max_pending_replies) {
    return true;
  }
  return options_.max_outbuf_bytes != 0 &&
         conn.outbuf.size() - conn.outpos >= options_.max_outbuf_bytes;
}

void NetServer::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  const bool want_write = !conn->outbuf.empty();
  const bool want_read = !conn->closing && !Backpressured(*conn);
  if (want_write == conn->wants_write && want_read == conn->wants_read) {
    return;
  }
  // With both cleared the connection waits on worker completions alone:
  // the wake fd leads back to FlushConnection, which re-registers here.
  const uint32_t events =
      (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  if (loop_.Modify(conn->fd, events, static_cast<uint64_t>(conn->fd)).ok()) {
    conn->wants_read = want_read;
    conn->wants_write = want_write;
  }
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  (void)loop_.Remove(conn->fd);
  ::close(conn->fd);
  connections_.erase(conn->fd);
  conn->fd = -1;  // late completions see a dead connection and drop
}

void NetServer::Complete(const std::shared_ptr<Shared>& shared,
                         const std::shared_ptr<Connection>& conn,
                         const std::shared_ptr<Slot>& slot,
                         std::string bytes) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    slot->bytes = std::move(bytes);
    slot->done = true;
    if (shared->alive) {
      shared->ready.push_back(conn);
      notify = true;
    }
  }
  if (notify) shared->wake.Notify();
}

}  // namespace net
}  // namespace privsan
