#include "net/text_protocol.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "core/privacy_params.h"
#include "synth/generator.h"

namespace privsan {
namespace net {

namespace {

std::optional<UtilityObjective> ParseObjective(const std::string& token) {
  if (token == "OUMP" || token == "O-UMP" || token == "oump") {
    return UtilityObjective::kOutputSize;
  }
  if (token == "FUMP" || token == "F-UMP" || token == "fump") {
    return UtilityObjective::kFrequentPairs;
  }
  if (token == "DUMP" || token == "D-UMP" || token == "dump") {
    return UtilityObjective::kDiversity;
  }
  return std::nullopt;
}

std::string ErrLine(const Status& status) {
  return "ERR " + status.ToString();
}

std::string FormatStats(const serve::TenantStats& stats) {
  std::ostringstream out;
  out << "OK appends_enqueued=" << stats.appends_enqueued
      << " flushes=" << stats.flushes
      << " appends_coalesced=" << stats.appends_coalesced
      << " maintenance_flushes=" << stats.maintenance_flushes
      << " solves=" << stats.solves << " cache_hits=" << stats.cache_hits
      << " cache_misses=" << stats.cache_misses
      << " repair_aborted=" << stats.repair_aborted
      << " refactorizations=" << stats.refactorizations
      << " factor_nnz=" << stats.factor_nnz
      << " max_update_run=" << stats.max_update_run
      << " sparse_solves=" << stats.sparse_solves
      << " sparse_ftran_hits=" << stats.sparse_ftran_hits
      << " mean_reach_permille=" << stats.mean_reach_permille
      << " rows_copied=" << stats.rows_copied
      << " rows_rebuilt=" << stats.rows_rebuilt
      << " refresh_solves=" << stats.refresh_solves
      << " evictions=" << stats.evictions << " reloads=" << stats.reloads
      << " fast_lane_hits=" << stats.fast_lane_hits
      << " admission_rejected=" << stats.admission_rejected
      << " resident_bytes=" << stats.resident_bytes
      << " users_removed=" << stats.users_removed
      << " rows_patched_on_remove=" << stats.rows_patched_on_remove
      << " epsilon_spent_micro=" << stats.epsilon_spent_micro
      << " budget_refusals=" << stats.budget_refusals;
  return out.str();
}

}  // namespace

void TextProtocol::SubmitMany(std::vector<serve::ServeRequest> requests,
                              Formatter format, Done done) {
  struct Batch {
    std::mutex mu;
    std::vector<serve::ServeResponse> responses;
    size_t remaining = 0;
    Formatter format;
    Done done;
  };
  auto batch = std::make_shared<Batch>();
  batch->responses.resize(requests.size());
  batch->remaining = requests.size();
  batch->format = std::move(format);
  batch->done = std::move(done);
  for (size_t i = 0; i < requests.size(); ++i) {
    submit_(std::move(requests[i]),
            [batch, i](serve::ServeResponse response) {
              bool last = false;
              {
                std::lock_guard<std::mutex> lock(batch->mu);
                batch->responses[i] = std::move(response);
                last = (--batch->remaining == 0);
              }
              // The reply fires outside the lock; `done` may do I/O.
              if (last) batch->done(batch->format(batch->responses));
            });
  }
}

bool TextProtocol::Handle(const std::string& line, Done done) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command) || command[0] == '#') {
    done("");  // blank/comment: nothing to print, but the slot resolves
    return true;
  }

  if (command == "QUIT") {
    done("OK bye");
    return false;
  }
  if (command == "TENANTS") {
    if (!list_tenants_) {
      done("ERR TENANTS is not available over this transport");
    } else {
      std::string reply = "OK";
      for (const std::string& name : list_tenants_()) reply += ' ' + name;
      done(std::move(reply));
    }
    return true;
  }
  if (command == "METRICS") {
    // Tenant-less: one multi-line reply (the Prometheus scrape, ending
    // with its "# EOF" marker) — identical bytes on every transport.
    std::vector<serve::ServeRequest> requests;
    requests.push_back(serve::MetricsRequest{});
    SubmitMany(
        std::move(requests),
        [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          const serve::MetricsText* metrics = responses[0].metrics();
          if (metrics == nullptr) {
            return ErrLine(Status::Internal("Metrics returned no payload"));
          }
          std::string text = metrics->text;
          // The transport appends the line terminator.
          while (!text.empty() && text.back() == '\n') text.pop_back();
          return text;
        },
        std::move(done));
    return true;
  }
  if (command == "SLOWLOG") {
    serve::SlowLogRequest request;
    in >> request.limit;  // optional; 0 (absent) dumps everything
    std::vector<serve::ServeRequest> requests;
    requests.push_back(std::move(request));
    SubmitMany(
        std::move(requests),
        [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          const serve::SlowLogDump* dump = responses[0].slow_log();
          if (dump == nullptr) {
            return ErrLine(Status::Internal("SlowLog returned no payload"));
          }
          std::ostringstream out;
          char threshold[32];
          std::snprintf(threshold, sizeof(threshold), "%.3f",
                        dump->threshold_ms);
          out << "OK slowlog entries=" << dump->records.size()
              << " dropped=" << dump->dropped
              << " threshold_ms=" << threshold;
          for (const obs::SlowRequestRecord& record : dump->records) {
            out << '\n' << obs::FormatSlowRecord(record);
          }
          return out.str();
        },
        std::move(done));
    return true;
  }

  std::string tenant;
  if (!(in >> tenant)) {
    done("ERR usage: " + command + " <tenant> ...");
    return true;
  }

  auto ack = [this, &done](serve::ServeRequest request,
                           std::string ok_line) {
    std::vector<serve::ServeRequest> requests;
    requests.push_back(std::move(request));
    SubmitMany(std::move(requests),
               [ok_line = std::move(ok_line)](auto& responses) {
                 return responses[0].ok() ? ok_line
                                          : ErrLine(responses[0].status);
               },
               std::move(done));
  };

  if (command == "CREATE") {
    serve::CreateTenantRequest create{tenant, SearchLog(), std::nullopt};
    // Optional stream configuration:
    //   CREATE <tenant> [<max_eps> <max_delta> <floor> <basic|advanced>
    //                    [<sliding|tumbling> <span_secs>]]
    std::string composition;
    if (in >> create.budget.max_epsilon >> create.budget.max_delta >>
        create.budget.min_remaining_epsilon >> composition) {
      Result<stream::Composition> mode =
          stream::CompositionFromString(composition);
      if (!mode.ok()) {
        done(ErrLine(mode.status()));
        return true;
      }
      create.budget.composition = *mode;
      std::string kind;
      if (in >> kind >> create.window.span) {
        Result<stream::WindowKind> window_kind =
            stream::WindowKindFromString(kind);
        if (!window_kind.ok()) {
          done(ErrLine(window_kind.status()));
          return true;
        }
        create.window.kind = *window_kind;
      }
    }
    ack(std::move(create), "OK created " + tenant);
  } else if (command == "REMOVE") {
    std::vector<std::string> users;
    std::string user;
    while (in >> user) users.push_back(std::move(user));
    if (users.empty()) {
      done("ERR usage: REMOVE <tenant> <user...>");
    } else {
      // Remove + Stats on the same tenant queue: the counters reflect
      // exactly this removal.
      std::vector<serve::ServeRequest> requests;
      requests.push_back(
          serve::RemoveUsersRequest{tenant, std::move(users)});
      requests.push_back(serve::StatsRequest{tenant});
      SubmitMany(
          std::move(requests),
          [](auto& responses) -> std::string {
            if (!responses[0].ok()) return ErrLine(responses[0].status);
            if (!responses[1].ok()) return ErrLine(responses[1].status);
            const serve::TenantStats& stats = *responses[1].stats();
            std::ostringstream out;
            out << "OK users_removed=" << stats.users_removed
                << " rows_copied=" << stats.rows_copied
                << " rows_rebuilt=" << stats.rows_rebuilt;
            return out.str();
          },
          std::move(done));
    }
  } else if (command == "EXPIRE") {
    uint64_t cutoff = 0;
    if (!(in >> cutoff)) {
      done("ERR usage: EXPIRE <tenant> <cutoff_secs>");
    } else {
      std::vector<serve::ServeRequest> requests;
      requests.push_back(serve::ExpireWindowRequest{tenant, cutoff});
      requests.push_back(serve::StatsRequest{tenant});
      SubmitMany(
          std::move(requests),
          [](auto& responses) -> std::string {
            if (!responses[0].ok()) return ErrLine(responses[0].status);
            if (!responses[1].ok()) return ErrLine(responses[1].status);
            const serve::TenantStats& stats = *responses[1].stats();
            std::ostringstream out;
            out << "OK users_removed=" << stats.users_removed
                << " rows_copied=" << stats.rows_copied
                << " rows_rebuilt=" << stats.rows_rebuilt;
            return out.str();
          },
          std::move(done));
    }
  } else if (command == "BUDGET") {
    std::vector<serve::ServeRequest> requests;
    requests.push_back(serve::BudgetStatusRequest{tenant});
    SubmitMany(
        std::move(requests),
        [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          const serve::BudgetStatus* budget = responses[0].budget();
          if (budget == nullptr) {
            return ErrLine(
                Status::Internal("BudgetStatus returned no payload"));
          }
          std::ostringstream out;
          out << "OK enforced=" << (budget->enforced ? 1 : 0)
              << " composition=" << budget->composition
              << " max_epsilon=" << budget->max_epsilon
              << " spent_epsilon=" << budget->spent_epsilon
              << " remaining_epsilon=" << budget->remaining_epsilon
              << " spent_delta=" << budget->spent_delta
              << " floor=" << budget->min_remaining_epsilon
              << " allocations=" << budget->allocations
              << " refusals=" << budget->refusals;
          return out.str();
        },
        std::move(done));
  } else if (command == "GEN") {
    uint64_t users = 0, events = 0, seed = 0;
    if (!(in >> users >> events >> seed)) {
      done("ERR usage: GEN <tenant> <users> <events> <seed>");
    } else if (users == 0 || users > kMaxGenUsers ||
               events > kMaxGenEvents) {
      // A count like "-1" parses as 2^64-1; reject it here instead of
      // letting the generator throw and kill the whole pipeline.
      done("ERR GEN counts out of range (users 1.." +
           std::to_string(kMaxGenUsers) + ", events 0.." +
           std::to_string(kMaxGenEvents) + ")");
    } else {
      SyntheticLogConfig config = TinyConfig();
      config.num_users = users;
      config.num_events = events;
      config.seed = seed;
      // Sharded over the backend's pool when one is available (nullptr =
      // serial) — bit-identical to the serial path for the given seed.
      Result<SearchLog> log = GenerateSearchLog(config, gen_pool_);
      if (!log.ok()) {
        done(ErrLine(log.status()));
      } else {
        std::string ok_line =
            "OK queued users=" + std::to_string(log->num_users()) +
            " clicks=" + std::to_string(log->total_clicks());
        ack(serve::AppendRequest{tenant, std::move(*log)},
            std::move(ok_line));
      }
    }
  } else if (command == "APPEND") {
    std::string user, query, url;
    uint64_t count = 0;
    if (!(in >> user >> query >> url >> count) || count == 0) {
      done("ERR usage: APPEND <tenant> <user> <query> <url> <count>");
    } else {
      SearchLogBuilder builder;
      builder.Add(user, query, url, count);
      ack(serve::AppendRequest{tenant, builder.Build()},
          "OK queued 1 tuple");
    }
  } else if (command == "FLUSH") {
    // Flush + Stats on the same tenant queue: the stats snapshot is
    // guaranteed to reflect the finished flush.
    std::vector<serve::ServeRequest> requests;
    requests.push_back(serve::FlushRequest{tenant});
    requests.push_back(serve::StatsRequest{tenant});
    SubmitMany(
        std::move(requests),
        [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          if (!responses[1].ok()) return ErrLine(responses[1].status);
          const serve::TenantStats& stats = *responses[1].stats();
          std::ostringstream out;
          out << "OK flushes=" << stats.flushes
              << " coalesced=" << stats.appends_coalesced
              << " rows_copied=" << stats.rows_copied
              << " rows_rebuilt=" << stats.rows_rebuilt;
          return out.str();
        },
        std::move(done));
  } else if (command == "SOLVE") {
    std::string objective_token;
    double e_eps = 0.0, delta = 0.0;
    if (!(in >> objective_token >> e_eps >> delta)) {
      done("ERR usage: SOLVE <tenant> <OUMP|FUMP|DUMP> <e_eps> <delta> "
           "[output_size]");
    } else if (auto objective = ParseObjective(objective_token);
               !objective.has_value()) {
      done("ERR unknown objective: " + objective_token);
    } else {
      UmpQuery query;
      query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
      in >> query.output_size;  // optional; stays 0 when absent
      // Stats before + solve + stats after, all FIFO on the tenant
      // queue: `cached=` is exact even mid-pipeline.
      std::vector<serve::ServeRequest> requests;
      requests.push_back(serve::StatsRequest{tenant});
      requests.push_back(serve::SolveRequest{tenant, *objective, query});
      requests.push_back(serve::StatsRequest{tenant});
      SubmitMany(
          std::move(requests),
          [](auto& responses) -> std::string {
            if (!responses[1].ok()) return ErrLine(responses[1].status);
            const UmpSolution& solution = *responses[1].solution();
            const uint64_t hits_before =
                responses[0].ok() ? responses[0].stats()->cache_hits : 0;
            const uint64_t hits_after =
                responses[2].ok() ? responses[2].stats()->cache_hits : 0;
            std::ostringstream out;
            out << "OK objective=" << solution.objective_value
                << " output_size=" << solution.output_size
                << " warm=" << (solution.stats.warm_started ? 1 : 0)
                << " cached=" << (hits_after > hits_before ? 1 : 0)
                << " root_iterations=" << solution.stats.root_iterations;
            return out.str();
          },
          std::move(done));
    }
  } else if (command == "SWEEP") {
    std::string objective_token;
    double delta = 0.0;
    if (!(in >> objective_token >> delta)) {
      done("ERR usage: SWEEP <tenant> <OUMP|FUMP|DUMP> <delta> "
           "<e_eps...>");
    } else if (auto objective = ParseObjective(objective_token);
               !objective.has_value()) {
      done("ERR unknown objective: " + objective_token);
    } else {
      std::vector<UmpQuery> grid;
      double e_eps = 0.0;
      while (in >> e_eps) {
        UmpQuery query;
        query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
        grid.push_back(query);
      }
      if (grid.empty()) {
        done("ERR SWEEP needs at least one e_eps value");
      } else {
        std::vector<serve::ServeRequest> requests;
        requests.push_back(serve::SweepRequest{
            tenant, *objective, std::move(grid), SweepOptions{}});
        SubmitMany(
            std::move(requests),
            [](auto& responses) -> std::string {
              if (!responses[0].ok()) return ErrLine(responses[0].status);
              const SweepResult& sweep = *responses[0].sweep();
              std::ostringstream out;
              out << "OK cells=" << sweep.cells.size()
                  << " warm_solves=" << sweep.warm_solves
                  << " simplex_iterations="
                  << sweep.total_simplex_iterations << " objectives=";
              for (size_t i = 0; i < sweep.cells.size(); ++i) {
                out << (i > 0 ? "," : "") << sweep.cells[i].objective_value;
              }
              return out.str();
            },
            std::move(done));
      }
    }
  } else if (command == "SNAPSHOT") {
    std::string path;
    if (!(in >> path)) {
      done("ERR usage: SNAPSHOT <tenant> <path>");
    } else {
      ack(serve::SaveSnapshotRequest{tenant, path}, "OK wrote " + path);
    }
  } else if (command == "RESTORE") {
    std::string path;
    if (!(in >> path)) {
      done("ERR usage: RESTORE <tenant> <path>");
    } else {
      ack(serve::RestoreTenantRequest{tenant, path, std::nullopt},
          "OK restored " + tenant);
    }
  } else if (command == "DROP") {
    ack(serve::DropTenantRequest{tenant}, "OK dropped " + tenant);
  } else if (command == "STATS") {
    std::vector<serve::ServeRequest> requests;
    requests.push_back(serve::StatsRequest{tenant});
    SubmitMany(
        std::move(requests),
        [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          return FormatStats(*responses[0].stats());
        },
        std::move(done));
  } else {
    done("ERR unknown command: " + command);
  }
  return true;
}

}  // namespace net
}  // namespace privsan
