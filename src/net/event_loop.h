// A minimal epoll wrapper: the readiness core of the serving front-end.
//
// EventLoop owns one epoll instance. Callers register file descriptors
// with an opaque u64 tag (typically the fd itself); Poll waits for
// readiness and invokes a handler per ready descriptor. Single-threaded
// by design — exactly one thread calls Poll — which is what makes the
// server's connection state lock-free: all socket I/O happens on the loop
// thread, and worker threads hand completed responses back through a
// WakeFd (an eventfd the loop also polls).
//
// Everything here is Linux-specific (epoll, eventfd), like the rest of
// the serving stack; the solver layers below stay portable.
#ifndef PRIVSAN_NET_EVENT_LOOP_H_
#define PRIVSAN_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>

#include "util/result.h"

namespace privsan {
namespace net {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll_create failed (the constructor cannot report it).
  bool valid() const { return epfd_ >= 0; }

  // `events` is an EPOLLIN/EPOLLOUT/... mask; `tag` comes back in Poll.
  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Modify(int fd, uint32_t events, uint64_t tag);
  Status Remove(int fd);

  using Handler = std::function<void(uint64_t tag, uint32_t events)>;

  // Waits up to `timeout_ms` (-1 = forever), invokes `handler` once per
  // ready descriptor, returns how many fired (0 on timeout). EINTR is
  // retried internally.
  Result<int> Poll(int timeout_ms, const Handler& handler);

 private:
  int epfd_ = -1;
};

// An eventfd wrapped for cross-thread wakeups: worker threads Notify(),
// the loop polls fd() for EPOLLIN and Drain()s on wake. Notify is
// async-signal-safe and never blocks (the counter saturates).
class WakeFd {
 public:
  WakeFd();
  ~WakeFd();

  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Notify();
  void Drain();

 private:
  int fd_ = -1;
};

// Shared fd helpers for the server, client and router.
Status SetNonBlocking(int fd);
// Creates a listening TCP socket bound to 127.0.0.1:`port` (0 picks an
// ephemeral port); returns the fd and writes the bound port back.
Result<int> ListenTcp(uint16_t port, uint16_t* bound_port);
// Blocking connect to 127.0.0.1:`port` (one attempt; callers own retry).
Result<int> ConnectTcp(uint16_t port);

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_EVENT_LOOP_H_
