// The binary framed wire protocol, layer 2: typed payloads.
//
// Maps the serve/api.h request/response family onto net/frame.h frames.
// Each ServeRequest alternative becomes one frame whose verb names the
// alternative and whose payload serializes its fields with the
// util/binary_io primitives; SearchLogs travel in the snapshot codec's
// byte layout (serve::WriteSearchLog), bases via lp/basis_io. Every
// request payload starts with the tenant name, so a router can pick the
// shard with PeekTenant without decoding the rest.
//
// Responses are one kResponse frame: the StatusCode rides the frame
// header (admission-control rejections are visible as kResourceExhausted
// before any payload decode), the payload holds the status message plus
// the verb's typed payload, tagged by a one-byte kind.
//
// Not serialized: the optional per-tenant SessionOptions override of
// CreateTenant/RestoreTenant. SessionOptions carries process-local state
// (a worker-pool pointer, solver tunables sized to the host), so remote
// tenants always use the backend's configured defaults; EncodeRequest
// rejects a request carrying an override rather than silently dropping
// it.
//
// Malformed payloads (truncated, out-of-range enums, implausible counts)
// fail with typed errors and never crash or over-allocate — the same
// contract as the snapshot codec, enforced by the same ReadCount guards.
#ifndef PRIVSAN_NET_CODEC_H_
#define PRIVSAN_NET_CODEC_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "serve/api.h"
#include "util/result.h"

namespace privsan {
namespace net {

// InvalidArgument if the request carries a SessionOptions override (not
// representable on the wire; see the header comment).
Result<Frame> EncodeRequest(const serve::ServeRequest& request,
                            uint64_t request_id);
Result<serve::ServeRequest> DecodeRequest(const Frame& frame);

Frame EncodeResponse(const serve::ServeResponse& response,
                     uint64_t request_id);
Result<serve::ServeResponse> DecodeResponse(const Frame& frame);

// The tenant a request frame addresses, without decoding the rest of the
// payload — the router's per-frame hot path.
Result<std::string> PeekTenant(const Frame& frame);

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_CODEC_H_
