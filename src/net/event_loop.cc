#include "net/event_loop.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

namespace privsan {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

Status EventLoop::Add(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status EventLoop::Remove(int fd) {
  if (epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Result<int> EventLoop::Poll(int timeout_ms, const Handler& handler) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  int n;
  do {
    n = epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    handler(events[i].data.u64, events[i].events);
  }
  return n;
}

WakeFd::WakeFd() : fd_(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

WakeFd::~WakeFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeFd::Notify() {
  const uint64_t one = 1;
  // A full counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void WakeFd::Drain() {
  uint64_t count = 0;
  [[maybe_unused]] ssize_t n = ::read(fd_, &count, sizeof(count));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Result<int> ListenTcp(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
        0) {
      ::close(fd);
      return Errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

Result<int> ConnectTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect 127.0.0.1:" + std::to_string(port));
  }
  // Request/response frames are latency-bound, not throughput-bound.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace net
}  // namespace privsan
