// The binary framed wire protocol, layer 1: length-prefixed frames.
//
// Every message on a privsan connection — request or response — is one
// frame:
//
//   [u32 length] [u32 magic "PSNF"] [u8 version] [u8 verb]
//   [u16 status] [u64 request_id] [payload bytes]
//
// `length` counts everything after itself (the 16-byte header plus the
// payload), so a reader needs only 4 bytes to know how much to buffer.
// All fields are native-endian, matching the snapshot files (util/
// binary_io.h): the fleet this protocol connects is same-architecture by
// construction — backends and router share a snapshot directory for
// tenant migration, which already assumes one machine profile.
//
// `verb` names the request alternative (FrameVerb mirrors the
// serve::ServeRequest variant order) or kResponse for replies. `status`
// carries the StatusCode of a response (0 on requests), so transport-level
// outcomes — notably kResourceExhausted from admission control — are
// readable without decoding the payload. `request_id` is chosen by the
// client and echoed verbatim in the response; replies additionally arrive
// in per-connection request order, so the id is a cross-check, not a
// matching requirement.
//
// FrameDecoder turns an arbitrary chunking of the byte stream back into
// frames: feed it whatever read() produced, pop complete frames. Malformed
// input — bad magic, unknown version, implausible length — fails with a
// typed InvalidArgument instead of crashing or over-allocating; after an
// error the stream has lost sync and the connection should be dropped.
#ifndef PRIVSAN_NET_FRAME_H_
#define PRIVSAN_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace privsan {
namespace net {

// "PSNF" little-endian: 'P' is the first byte on the wire.
constexpr uint32_t kFrameMagic = 0x464E5350u;
constexpr uint8_t kProtocolVersion = 1;
// Header bytes covered by `length` (magic..request_id).
constexpr uint32_t kFrameHeaderBytes = 16;
// Payload cap, mirroring the snapshot codec's element cap: a log big
// enough to exceed this does not fit a single append either. A corrupt or
// hostile length field beyond it is rejected before any allocation.
constexpr uint32_t kMaxFramePayload = 1u << 26;

enum class FrameVerb : uint8_t {
  kResponse = 0,
  // Request verbs, in serve::ServeRequest variant order.
  kCreateTenant = 1,
  kAppend = 2,
  kFlush = 3,
  kSolve = 4,
  kSweep = 5,
  kSanitize = 6,
  kStats = 7,
  kSaveSnapshot = 8,
  kRestoreTenant = 9,
  kDropTenant = 10,
  // Observability verbs (PR 8). Tenant-less: the tenant string on the
  // wire is empty, and the service answers inline without queueing.
  kMetrics = 11,
  kSlowLog = 12,
  // Streaming lifecycle verbs (PR 10): deletion, window expiry, budget.
  kRemoveUsers = 13,
  kExpireWindow = 14,
  kBudgetStatus = 15,
};
constexpr uint8_t kMaxFrameVerb = 15;

const char* FrameVerbName(FrameVerb verb);

struct Frame {
  FrameVerb verb = FrameVerb::kResponse;
  uint16_t status = 0;  // StatusCode of a response; 0 on requests
  uint64_t request_id = 0;
  std::string payload;
};

// Appends the encoded frame (length prefix included) to `out`. A payload
// over kMaxFramePayload (which no peer would accept, and which could wrap
// the u32 length) is replaced by a header-only kResourceExhausted error
// frame; the codecs cap payloads first, so that is a last-resort guard.
void EncodeFrame(const Frame& frame, std::string* out);
std::string EncodeFrame(const Frame& frame);

// Incremental reassembly of a frame stream from arbitrary read() chunks.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }
  void Feed(const std::string& data) { Feed(data.data(), data.size()); }

  // True and fills `out` when a complete frame was buffered; false when
  // more bytes are needed. A malformed stream (bad magic/version/verb,
  // implausible length) returns InvalidArgument — the decoder is then
  // unsynchronized and the connection should be closed.
  Result<bool> Next(Frame* out);

  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  size_t max_payload_;
};

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_FRAME_H_
