#include "net/codec.h"

#include <sstream>
#include <utility>
#include <variant>
#include <vector>

#include "lp/basis_io.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"

namespace privsan {
namespace net {

namespace {

using binary_io::ReadCount;
using binary_io::ReadScalar;
using binary_io::ReadString;
using binary_io::WriteScalar;
using binary_io::WriteString;

// Mirrors the snapshot codec's element cap: bounds every vector count in a
// payload so corrupt frames fail before allocating.
constexpr uint64_t kMaxElements = 1ull << 26;

// Conservative lower bounds on the wire size of compound elements, for
// ReadBoundedCount: well under the true encoded sizes, so legitimate
// payloads always pass.
constexpr uint64_t kMinSolutionWireBytes = 64;  // true minimum is ~124
constexpr uint64_t kMinQueryWireBytes = 26;     // 2 doubles + u64 + 2 flags

// Reads an element count and bounds it by the bytes actually remaining in
// the payload stream. ReadCount's kMaxElements cap alone still lets a
// hostile count in a tiny frame force a ~512MB up-front resize (2^26
// 8-byte elements) that only fails afterwards on EOF; the payload length
// is known, so a count the frame cannot possibly back fails first.
Result<uint64_t> ReadBoundedCount(std::istream& in,
                                  uint64_t min_bytes_per_element) {
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t count, ReadCount(in, kMaxElements));
  const auto pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  const uint64_t remaining =
      (pos >= 0 && end > pos) ? static_cast<uint64_t>(end - pos) : 0;
  // count <= 2^26 and element sizes are small: the product cannot wrap.
  if (count * min_bytes_per_element > remaining) {
    return Status::InvalidArgument(
        "malformed frame payload: element count " + std::to_string(count) +
        " exceeds the " + std::to_string(remaining) +
        " bytes remaining in the frame");
  }
  return count;
}

Status CheckDrained(std::istringstream& in) {
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument(
        "malformed frame payload: trailing bytes after the last field");
  }
  return Status::OK();
}

// --- Leaf codecs -----------------------------------------------------------

void WriteQuery(std::ostream& out, const UmpQuery& query) {
  WriteScalar<double>(out, query.privacy.epsilon);
  WriteScalar<double>(out, query.privacy.delta);
  WriteScalar<uint64_t>(out, query.output_size);
  WriteScalar<uint8_t>(out, query.solver.has_value() ? 1 : 0);
  WriteScalar<uint8_t>(
      out, query.solver.has_value()
               ? static_cast<uint8_t>(*query.solver)
               : 0);
}

Result<UmpQuery> ReadQuery(std::istream& in) {
  UmpQuery query;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &query.privacy.epsilon));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &query.privacy.delta));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &query.output_size));
  uint8_t has_solver = 0, solver = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &has_solver));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solver));
  if (has_solver != 0) {
    if (solver > static_cast<uint8_t>(DumpSolverKind::kBranchAndBound)) {
      return Status::InvalidArgument(
          "malformed frame payload: unknown D-UMP solver kind " +
          std::to_string(solver));
    }
    query.solver = static_cast<DumpSolverKind>(solver);
  }
  return query;
}

Result<UtilityObjective> ReadObjective(std::istream& in) {
  uint8_t objective = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &objective));
  if (objective > static_cast<uint8_t>(UtilityObjective::kDiversity)) {
    return Status::InvalidArgument(
        "malformed frame payload: unknown objective " +
        std::to_string(objective));
  }
  return static_cast<UtilityObjective>(objective);
}

void WriteStats(std::ostream& out, const UmpStats& stats) {
  WriteScalar<int64_t>(out, stats.simplex_iterations);
  WriteScalar<int64_t>(out, stats.dual_iterations);
  WriteScalar<int32_t>(out, stats.refactorizations);
  WriteScalar<int32_t>(out, stats.basis_repairs);
  WriteScalar<int64_t>(out, stats.repair_aborted);
  WriteScalar<int64_t>(out, stats.nodes_explored);
  WriteScalar<int64_t>(out, stats.warm_solves);
  WriteScalar<uint8_t>(out, stats.warm_started ? 1 : 0);
  WriteScalar<int64_t>(out, stats.root_iterations);
  WriteScalar<int32_t>(out, stats.integer_fixed);
  WriteScalar<uint64_t>(out, static_cast<uint64_t>(stats.factor_nnz));
  WriteScalar<int32_t>(out, stats.max_update_run);
  WriteScalar<uint64_t>(out, stats.sparse_solves);
  WriteScalar<uint64_t>(out, stats.sparse_ftran_hits);
  WriteScalar<double>(out, stats.mean_reach_fraction);
  WriteScalar<double>(out, stats.wall_seconds);
}

Status ReadStats(std::istream& in, UmpStats* stats) {
  int32_t i32 = 0;
  uint8_t u8 = 0;
  uint64_t u64 = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->simplex_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->dual_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &i32));
  stats->refactorizations = i32;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &i32));
  stats->basis_repairs = i32;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->repair_aborted));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->nodes_explored));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->warm_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u8));
  stats->warm_started = u8 != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->root_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &i32));
  stats->integer_fixed = i32;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u64));
  stats->factor_nnz = static_cast<size_t>(u64);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &i32));
  stats->max_update_run = i32;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->sparse_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->sparse_ftran_hits));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->mean_reach_fraction));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->wall_seconds));
  return Status::OK();
}

void WriteSolution(std::ostream& out, const UmpSolution& solution) {
  WriteScalar<uint8_t>(out, static_cast<uint8_t>(solution.objective));
  WriteScalar<uint64_t>(out, solution.x.size());
  for (uint64_t value : solution.x) WriteScalar<uint64_t>(out, value);
  WriteScalar<uint64_t>(out, solution.x_relaxed.size());
  for (double value : solution.x_relaxed) WriteScalar<double>(out, value);
  WriteScalar<double>(out, solution.objective_value);
  WriteScalar<uint64_t>(out, solution.output_size);
  lp::WriteBasis(out, solution.basis);
  WriteStats(out, solution.stats);
  WriteScalar<uint64_t>(out, solution.frequent_pairs.size());
  for (PairId pair : solution.frequent_pairs) {
    WriteScalar<uint32_t>(out, pair);
  }
  WriteScalar<uint8_t>(out, solution.used_precision_caps ? 1 : 0);
  WriteScalar<uint8_t>(out, solution.proven_optimal ? 1 : 0);
}

Result<UmpSolution> ReadSolution(std::istream& in) {
  UmpSolution solution;
  PRIVSAN_ASSIGN_OR_RETURN(UtilityObjective objective, ReadObjective(in));
  solution.objective = objective;
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t n,
                           ReadBoundedCount(in, sizeof(uint64_t)));
  solution.x.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solution.x[i]));
  }
  PRIVSAN_ASSIGN_OR_RETURN(n, ReadBoundedCount(in, sizeof(double)));
  solution.x_relaxed.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solution.x_relaxed[i]));
  }
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solution.objective_value));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solution.output_size));
  PRIVSAN_ASSIGN_OR_RETURN(solution.basis, lp::ReadBasis(in));
  PRIVSAN_RETURN_IF_ERROR(ReadStats(in, &solution.stats));
  PRIVSAN_ASSIGN_OR_RETURN(n, ReadBoundedCount(in, sizeof(uint32_t)));
  solution.frequent_pairs.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &solution.frequent_pairs[i]));
  }
  uint8_t flag = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  solution.used_precision_caps = flag != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  solution.proven_optimal = flag != 0;
  return solution;
}

void WriteSweep(std::ostream& out, const SweepResult& sweep) {
  WriteScalar<uint64_t>(out, sweep.cells.size());
  for (const UmpSolution& cell : sweep.cells) WriteSolution(out, cell);
  WriteScalar<int64_t>(out, sweep.total_simplex_iterations);
  WriteScalar<int64_t>(out, sweep.total_dual_iterations);
  WriteScalar<int64_t>(out, sweep.total_root_iterations);
  WriteScalar<int64_t>(out, sweep.warm_solves);
  WriteScalar<int64_t>(out, sweep.repair_aborted);
  WriteScalar<uint64_t>(out, static_cast<uint64_t>(sweep.factor_nnz));
  WriteScalar<int32_t>(out, sweep.max_update_run);
  WriteScalar<uint64_t>(out, sweep.sparse_solves);
  WriteScalar<uint64_t>(out, sweep.sparse_ftran_hits);
  WriteScalar<double>(out, sweep.mean_reach_fraction);
  WriteScalar<double>(out, sweep.wall_seconds);
}

Result<SweepResult> ReadSweep(std::istream& in) {
  SweepResult sweep;
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t cells,
                           ReadBoundedCount(in, kMinSolutionWireBytes));
  sweep.cells.reserve(cells);
  for (uint64_t i = 0; i < cells; ++i) {
    PRIVSAN_ASSIGN_OR_RETURN(UmpSolution cell, ReadSolution(in));
    sweep.cells.push_back(std::move(cell));
  }
  uint64_t u64 = 0;
  int32_t i32 = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.total_simplex_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.total_dual_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.total_root_iterations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.warm_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.repair_aborted));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u64));
  sweep.factor_nnz = static_cast<size_t>(u64);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &i32));
  sweep.max_update_run = i32;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.sparse_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.sparse_ftran_hits));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.mean_reach_fraction));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &sweep.wall_seconds));
  return sweep;
}

void WriteReport(std::ostream& out, const SanitizeReport& report) {
  serve::WriteSearchLog(out, report.output);
  serve::WriteSearchLog(out, report.preprocessed_input);
  WriteScalar<uint64_t>(out, report.preprocess_stats.pairs_removed);
  WriteScalar<uint64_t>(out, report.preprocess_stats.pairs_retained);
  WriteScalar<uint64_t>(out, report.preprocess_stats.users_dropped);
  WriteScalar<uint64_t>(out, report.preprocess_stats.clicks_removed);
  WriteScalar<uint64_t>(out, report.preprocess_stats.clicks_retained);
  WriteScalar<uint64_t>(out, report.optimal_counts.size());
  for (uint64_t count : report.optimal_counts) {
    WriteScalar<uint64_t>(out, count);
  }
  WriteScalar<uint64_t>(out, report.output_size);
  WriteScalar<uint8_t>(out, report.audit.satisfies_privacy ? 1 : 0);
  WriteScalar<uint8_t>(out, report.audit.condition1_ok ? 1 : 0);
  WriteScalar<uint8_t>(out, report.audit.condition2_ok ? 1 : 0);
  WriteScalar<uint8_t>(out, report.audit.condition3_ok ? 1 : 0);
  WriteScalar<double>(out, report.audit.max_ratio);
  WriteScalar<double>(out, report.audit.max_leak_probability);
  WriteScalar<uint32_t>(out, report.audit.worst_user);
  WriteScalar<double>(out, report.audit.max_row_lhs);
  WriteScalar<double>(out, report.audit.budget);
  WriteScalar<double>(out, report.solve_seconds);
}

Result<SanitizeReport> ReadReport(std::istream& in) {
  SanitizeReport report;
  PRIVSAN_ASSIGN_OR_RETURN(report.output, serve::ReadSearchLog(in));
  PRIVSAN_ASSIGN_OR_RETURN(report.preprocessed_input,
                           serve::ReadSearchLog(in));
  uint64_t u64 = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u64));
  report.preprocess_stats.pairs_removed = static_cast<size_t>(u64);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u64));
  report.preprocess_stats.pairs_retained = static_cast<size_t>(u64);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &u64));
  report.preprocess_stats.users_dropped = static_cast<size_t>(u64);
  PRIVSAN_RETURN_IF_ERROR(
      ReadScalar(in, &report.preprocess_stats.clicks_removed));
  PRIVSAN_RETURN_IF_ERROR(
      ReadScalar(in, &report.preprocess_stats.clicks_retained));
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t n,
                           ReadBoundedCount(in, sizeof(uint64_t)));
  report.optimal_counts.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.optimal_counts[i]));
  }
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.output_size));
  uint8_t flag = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  report.audit.satisfies_privacy = flag != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  report.audit.condition1_ok = flag != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  report.audit.condition2_ok = flag != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &flag));
  report.audit.condition3_ok = flag != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.audit.max_ratio));
  PRIVSAN_RETURN_IF_ERROR(
      ReadScalar(in, &report.audit.max_leak_probability));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.audit.worst_user));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.audit.max_row_lhs));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.audit.budget));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &report.solve_seconds));
  return report;
}

void WriteTenantStats(std::ostream& out, const serve::TenantStats& stats) {
  WriteScalar<uint64_t>(out, stats.appends_enqueued);
  WriteScalar<uint64_t>(out, stats.flushes);
  WriteScalar<uint64_t>(out, stats.appends_coalesced);
  WriteScalar<uint64_t>(out, stats.maintenance_flushes);
  WriteScalar<uint64_t>(out, stats.solves);
  WriteScalar<uint64_t>(out, stats.cache_hits);
  WriteScalar<uint64_t>(out, stats.cache_misses);
  WriteScalar<uint64_t>(out, stats.repair_aborted);
  WriteScalar<uint64_t>(out, stats.refactorizations);
  WriteScalar<uint64_t>(out, stats.factor_nnz);
  WriteScalar<uint64_t>(out, stats.max_update_run);
  WriteScalar<uint64_t>(out, stats.sparse_solves);
  WriteScalar<uint64_t>(out, stats.sparse_ftran_hits);
  WriteScalar<uint64_t>(out, stats.mean_reach_permille);
  WriteScalar<uint64_t>(out, stats.rows_copied);
  WriteScalar<uint64_t>(out, stats.rows_rebuilt);
  WriteScalar<uint64_t>(out, stats.refresh_solves);
  WriteScalar<uint64_t>(out, stats.evictions);
  WriteScalar<uint64_t>(out, stats.reloads);
  WriteScalar<uint64_t>(out, stats.resident_bytes);
  WriteScalar<uint64_t>(out, stats.fast_lane_hits);
  WriteScalar<uint64_t>(out, stats.admission_rejected);
  WriteScalar<uint64_t>(out, stats.users_removed);
  WriteScalar<uint64_t>(out, stats.rows_patched_on_remove);
  WriteScalar<uint64_t>(out, stats.epsilon_spent_micro);
  WriteScalar<uint64_t>(out, stats.budget_refusals);
}

Status ReadTenantStats(std::istream& in, serve::TenantStats* stats) {
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->appends_enqueued));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->flushes));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->appends_coalesced));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->maintenance_flushes));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->cache_hits));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->cache_misses));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->repair_aborted));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->refactorizations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->factor_nnz));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->max_update_run));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->sparse_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->sparse_ftran_hits));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->mean_reach_permille));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->rows_copied));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->rows_rebuilt));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->refresh_solves));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->evictions));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->reloads));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->resident_bytes));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->fast_lane_hits));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->admission_rejected));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->users_removed));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->rows_patched_on_remove));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->epsilon_spent_micro));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &stats->budget_refusals));
  return Status::OK();
}

void WriteSlowLogDump(std::ostream& out, const serve::SlowLogDump& dump) {
  WriteScalar<uint64_t>(out, dump.records.size());
  for (const obs::SlowRequestRecord& record : dump.records) {
    WriteScalar<uint64_t>(out, record.sequence);
    WriteString(out, record.tenant);
    WriteString(out, record.verb);
    WriteScalar<uint16_t>(out, record.status_code);
    WriteScalar<double>(out, record.total_ms);
    WriteScalar<double>(out, record.trace.queue_ms);
    WriteScalar<double>(out, record.trace.flush_ms);
    WriteScalar<double>(out, record.trace.solve_ms);
    WriteScalar<double>(out, record.trace.cache_ms);
    WriteScalar<uint64_t>(out, record.trace.repair_pivots);
    WriteScalar<uint64_t>(out, record.trace.iterations);
  }
  WriteScalar<uint64_t>(out, dump.dropped);
  WriteScalar<double>(out, dump.threshold_ms);
}

// Fixed fields of one slow record (sequence + status + 5 doubles + 2 u64
// + two string length prefixes), a conservative floor for ReadBoundedCount.
constexpr uint64_t kMinSlowRecordWireBytes = 82;

Result<serve::SlowLogDump> ReadSlowLogDump(std::istream& in) {
  serve::SlowLogDump dump;
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t n,
                           ReadBoundedCount(in, kMinSlowRecordWireBytes));
  dump.records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    obs::SlowRequestRecord record;
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.sequence));
    PRIVSAN_ASSIGN_OR_RETURN(record.tenant, ReadString(in));
    PRIVSAN_ASSIGN_OR_RETURN(record.verb, ReadString(in));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.status_code));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.total_ms));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.queue_ms));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.flush_ms));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.solve_ms));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.cache_ms));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.repair_pivots));
    PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &record.trace.iterations));
    dump.records.push_back(std::move(record));
  }
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &dump.dropped));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &dump.threshold_ms));
  return dump;
}

void WriteBudgetStatus(std::ostream& out, const serve::BudgetStatus& budget) {
  WriteScalar<double>(out, budget.max_epsilon);
  WriteScalar<double>(out, budget.max_delta);
  WriteScalar<double>(out, budget.min_remaining_epsilon);
  WriteString(out, budget.composition);
  WriteScalar<double>(out, budget.spent_epsilon);
  WriteScalar<double>(out, budget.spent_delta);
  WriteScalar<double>(out, budget.remaining_epsilon);
  WriteScalar<uint8_t>(out, budget.enforced ? 1 : 0);
  WriteScalar<uint64_t>(out, budget.allocations);
  WriteScalar<uint64_t>(out, budget.refusals);
}

Result<serve::BudgetStatus> ReadBudgetStatus(std::istream& in) {
  serve::BudgetStatus budget;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.max_epsilon));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.max_delta));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.min_remaining_epsilon));
  PRIVSAN_ASSIGN_OR_RETURN(budget.composition, ReadString(in));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.spent_epsilon));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.spent_delta));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.remaining_epsilon));
  uint8_t enforced = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &enforced));
  budget.enforced = enforced != 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.allocations));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget.refusals));
  return budget;
}

// The tenant-scoped stream configuration shipped inside CreateTenant:
// the budget config then the window policy, fixed-width.
void WriteStreamConfig(std::ostream& out, const stream::BudgetConfig& budget,
                       const stream::WindowPolicy& window) {
  WriteScalar<double>(out, budget.max_epsilon);
  WriteScalar<double>(out, budget.max_delta);
  WriteScalar<double>(out, budget.min_remaining_epsilon);
  WriteScalar<uint8_t>(out, static_cast<uint8_t>(budget.composition));
  WriteScalar<double>(out, budget.advanced_delta_slack);
  WriteScalar<uint8_t>(out, static_cast<uint8_t>(window.kind));
  WriteScalar<uint64_t>(out, window.span);
}

Status ReadStreamConfig(std::istream& in, stream::BudgetConfig* budget,
                        stream::WindowPolicy* window) {
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget->max_epsilon));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget->max_delta));
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget->min_remaining_epsilon));
  uint8_t composition = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &composition));
  if (composition > static_cast<uint8_t>(stream::Composition::kAdvanced)) {
    return Status::InvalidArgument(
        "malformed frame payload: unknown composition mode " +
        std::to_string(composition));
  }
  budget->composition = static_cast<stream::Composition>(composition);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &budget->advanced_delta_slack));
  uint8_t kind = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &kind));
  if (kind > static_cast<uint8_t>(stream::WindowKind::kTumbling)) {
    return Status::InvalidArgument(
        "malformed frame payload: unknown window kind " +
        std::to_string(kind));
  }
  window->kind = static_cast<stream::WindowKind>(kind);
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &window->span));
  return Status::OK();
}

// A user name on the wire is at least its length prefix, a conservative
// floor for ReadBoundedCount in RemoveUsers.
constexpr uint64_t kMinUserNameWireBytes = 4;

// Response payload kinds (the ServePayload variant, by index).
constexpr uint8_t kPayloadNone = 0;
constexpr uint8_t kPayloadSolution = 1;
constexpr uint8_t kPayloadSweep = 2;
constexpr uint8_t kPayloadReport = 3;
constexpr uint8_t kPayloadStats = 4;
constexpr uint8_t kPayloadMetrics = 5;
constexpr uint8_t kPayloadSlowLog = 6;
constexpr uint8_t kPayloadBudget = 7;

}  // namespace

// --- Requests --------------------------------------------------------------

Result<Frame> EncodeRequest(const serve::ServeRequest& request,
                            uint64_t request_id) {
  Frame frame;
  frame.request_id = request_id;
  std::ostringstream out;
  WriteString(out, serve::RequestTenant(request));

  if (const auto* create =
          std::get_if<serve::CreateTenantRequest>(&request)) {
    if (create->options.has_value()) {
      return Status::InvalidArgument(
          "CreateTenant with a SessionOptions override is not "
          "representable on the wire; configure the backend instead");
    }
    frame.verb = FrameVerb::kCreateTenant;
    serve::WriteSearchLog(out, create->initial);
    WriteStreamConfig(out, create->budget, create->window);
  } else if (const auto* append =
                 std::get_if<serve::AppendRequest>(&request)) {
    frame.verb = FrameVerb::kAppend;
    serve::WriteSearchLog(out, append->logs);
  } else if (std::get_if<serve::FlushRequest>(&request) != nullptr) {
    frame.verb = FrameVerb::kFlush;
  } else if (const auto* solve =
                 std::get_if<serve::SolveRequest>(&request)) {
    frame.verb = FrameVerb::kSolve;
    WriteScalar<uint8_t>(out, static_cast<uint8_t>(solve->objective));
    WriteQuery(out, solve->query);
  } else if (const auto* sweep =
                 std::get_if<serve::SweepRequest>(&request)) {
    frame.verb = FrameVerb::kSweep;
    WriteScalar<uint8_t>(out, static_cast<uint8_t>(sweep->objective));
    WriteScalar<uint64_t>(out, sweep->grid.size());
    for (const UmpQuery& query : sweep->grid) WriteQuery(out, query);
    WriteScalar<uint8_t>(out, sweep->sweep.warm_start ? 1 : 0);
    WriteScalar<uint8_t>(out, sweep->sweep.min_support.has_value() ? 1 : 0);
    WriteScalar<double>(out, sweep->sweep.min_support.value_or(0.0));
  } else if (const auto* sanitize =
                 std::get_if<serve::SanitizeRequest>(&request)) {
    frame.verb = FrameVerb::kSanitize;
    WriteScalar<double>(out, sanitize->privacy.epsilon);
    WriteScalar<double>(out, sanitize->privacy.delta);
  } else if (std::get_if<serve::StatsRequest>(&request) != nullptr) {
    frame.verb = FrameVerb::kStats;
  } else if (const auto* save =
                 std::get_if<serve::SaveSnapshotRequest>(&request)) {
    frame.verb = FrameVerb::kSaveSnapshot;
    WriteString(out, save->path);
  } else if (const auto* restore =
                 std::get_if<serve::RestoreTenantRequest>(&request)) {
    if (restore->options.has_value()) {
      return Status::InvalidArgument(
          "RestoreTenant with a SessionOptions override is not "
          "representable on the wire; configure the backend instead");
    }
    frame.verb = FrameVerb::kRestoreTenant;
    WriteString(out, restore->path);
  } else if (std::get_if<serve::DropTenantRequest>(&request) != nullptr) {
    frame.verb = FrameVerb::kDropTenant;
  } else if (std::get_if<serve::MetricsRequest>(&request) != nullptr) {
    frame.verb = FrameVerb::kMetrics;
  } else if (const auto* slowlog =
                 std::get_if<serve::SlowLogRequest>(&request)) {
    frame.verb = FrameVerb::kSlowLog;
    WriteScalar<uint64_t>(out, slowlog->limit);
  } else if (const auto* remove =
                 std::get_if<serve::RemoveUsersRequest>(&request)) {
    frame.verb = FrameVerb::kRemoveUsers;
    WriteScalar<uint64_t>(out, remove->users.size());
    for (const std::string& user : remove->users) WriteString(out, user);
  } else if (const auto* expire =
                 std::get_if<serve::ExpireWindowRequest>(&request)) {
    frame.verb = FrameVerb::kExpireWindow;
    WriteScalar<uint64_t>(out, expire->cutoff);
  } else if (std::get_if<serve::BudgetStatusRequest>(&request) != nullptr) {
    frame.verb = FrameVerb::kBudgetStatus;
  } else {
    return Status::Internal("unhandled serve request alternative");
  }

  frame.payload = std::move(out).str();
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "request payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the frame cap; split the append into smaller "
        "batches");
  }
  return frame;
}

Result<serve::ServeRequest> DecodeRequest(const Frame& frame) {
  if (frame.verb == FrameVerb::kResponse) {
    return Status::InvalidArgument(
        "expected a request frame, got a response");
  }
  std::istringstream in(frame.payload);
  PRIVSAN_ASSIGN_OR_RETURN(std::string tenant, ReadString(in));
  serve::ServeRequest request;

  switch (frame.verb) {
    case FrameVerb::kCreateTenant: {
      PRIVSAN_ASSIGN_OR_RETURN(SearchLog initial, serve::ReadSearchLog(in));
      serve::CreateTenantRequest create{std::move(tenant),
                                        std::move(initial), std::nullopt};
      PRIVSAN_RETURN_IF_ERROR(
          ReadStreamConfig(in, &create.budget, &create.window));
      request = std::move(create);
      break;
    }
    case FrameVerb::kAppend: {
      PRIVSAN_ASSIGN_OR_RETURN(SearchLog logs, serve::ReadSearchLog(in));
      request = serve::AppendRequest{std::move(tenant), std::move(logs)};
      break;
    }
    case FrameVerb::kFlush:
      request = serve::FlushRequest{std::move(tenant)};
      break;
    case FrameVerb::kSolve: {
      PRIVSAN_ASSIGN_OR_RETURN(UtilityObjective objective,
                               ReadObjective(in));
      PRIVSAN_ASSIGN_OR_RETURN(UmpQuery query, ReadQuery(in));
      request = serve::SolveRequest{std::move(tenant), objective, query};
      break;
    }
    case FrameVerb::kSweep: {
      PRIVSAN_ASSIGN_OR_RETURN(UtilityObjective objective,
                               ReadObjective(in));
      PRIVSAN_ASSIGN_OR_RETURN(uint64_t cells,
                               ReadBoundedCount(in, kMinQueryWireBytes));
      std::vector<UmpQuery> grid;
      grid.reserve(cells);
      for (uint64_t i = 0; i < cells; ++i) {
        PRIVSAN_ASSIGN_OR_RETURN(UmpQuery query, ReadQuery(in));
        grid.push_back(query);
      }
      SweepOptions sweep;
      uint8_t warm = 0, has_support = 0;
      double support = 0.0;
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &warm));
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &has_support));
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &support));
      sweep.warm_start = warm != 0;
      if (has_support != 0) sweep.min_support = support;
      request = serve::SweepRequest{std::move(tenant), objective,
                                    std::move(grid), sweep};
      break;
    }
    case FrameVerb::kSanitize: {
      PrivacyParams privacy;
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &privacy.epsilon));
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &privacy.delta));
      request = serve::SanitizeRequest{std::move(tenant), privacy};
      break;
    }
    case FrameVerb::kStats:
      request = serve::StatsRequest{std::move(tenant)};
      break;
    case FrameVerb::kSaveSnapshot: {
      PRIVSAN_ASSIGN_OR_RETURN(std::string path, ReadString(in));
      request = serve::SaveSnapshotRequest{std::move(tenant),
                                           std::move(path)};
      break;
    }
    case FrameVerb::kRestoreTenant: {
      PRIVSAN_ASSIGN_OR_RETURN(std::string path, ReadString(in));
      request = serve::RestoreTenantRequest{std::move(tenant),
                                            std::move(path), std::nullopt};
      break;
    }
    case FrameVerb::kDropTenant:
      request = serve::DropTenantRequest{std::move(tenant)};
      break;
    case FrameVerb::kMetrics:
      request = serve::MetricsRequest{std::move(tenant)};
      break;
    case FrameVerb::kSlowLog: {
      serve::SlowLogRequest slowlog;
      slowlog.tenant = std::move(tenant);
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &slowlog.limit));
      request = std::move(slowlog);
      break;
    }
    case FrameVerb::kRemoveUsers: {
      PRIVSAN_ASSIGN_OR_RETURN(uint64_t n,
                               ReadBoundedCount(in, kMinUserNameWireBytes));
      std::vector<std::string> users;
      users.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PRIVSAN_ASSIGN_OR_RETURN(std::string user, ReadString(in));
        users.push_back(std::move(user));
      }
      request = serve::RemoveUsersRequest{std::move(tenant),
                                          std::move(users)};
      break;
    }
    case FrameVerb::kExpireWindow: {
      uint64_t cutoff = 0;
      PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &cutoff));
      request = serve::ExpireWindowRequest{std::move(tenant), cutoff};
      break;
    }
    case FrameVerb::kBudgetStatus:
      request = serve::BudgetStatusRequest{std::move(tenant)};
      break;
    case FrameVerb::kResponse:
      return Status::Internal("unreachable");
  }
  PRIVSAN_RETURN_IF_ERROR(CheckDrained(in));
  return request;
}

// --- Responses -------------------------------------------------------------

Frame EncodeResponse(const serve::ServeResponse& response,
                     uint64_t request_id) {
  Frame frame;
  frame.verb = FrameVerb::kResponse;
  frame.status = static_cast<uint16_t>(response.status.code());
  frame.request_id = request_id;
  std::ostringstream out;
  WriteString(out, response.status.ok() ? std::string()
                                        : response.status.message());
  if (const UmpSolution* solution = response.solution()) {
    WriteScalar<uint8_t>(out, kPayloadSolution);
    WriteSolution(out, *solution);
  } else if (const SweepResult* sweep = response.sweep()) {
    WriteScalar<uint8_t>(out, kPayloadSweep);
    WriteSweep(out, *sweep);
  } else if (const SanitizeReport* report = response.report()) {
    WriteScalar<uint8_t>(out, kPayloadReport);
    WriteReport(out, *report);
  } else if (const serve::TenantStats* stats = response.stats()) {
    WriteScalar<uint8_t>(out, kPayloadStats);
    WriteTenantStats(out, *stats);
  } else if (const serve::MetricsText* metrics = response.metrics()) {
    WriteScalar<uint8_t>(out, kPayloadMetrics);
    WriteString(out, metrics->text);
  } else if (const serve::SlowLogDump* slowlog = response.slow_log()) {
    WriteScalar<uint8_t>(out, kPayloadSlowLog);
    WriteSlowLogDump(out, *slowlog);
  } else if (const serve::BudgetStatus* budget = response.budget()) {
    WriteScalar<uint8_t>(out, kPayloadBudget);
    WriteBudgetStatus(out, *budget);
  } else {
    WriteScalar<uint8_t>(out, kPayloadNone);
  }
  frame.payload = std::move(out).str();
  if (frame.payload.size() > kMaxFramePayload) {
    // Larger than any frame the peer's decoder accepts: shipping it would
    // be rejected as malformed and tear down the connection (failing every
    // pipelined request with it). Substitute a typed error the client can
    // decode and act on.
    return EncodeResponse(
        serve::ServeResponse{
            Status::ResourceExhausted(
                "response payload of " +
                std::to_string(frame.payload.size()) + " bytes exceeds the " +
                std::to_string(kMaxFramePayload) + "-byte frame cap"),
            {}},
        request_id);
  }
  return frame;
}

Result<serve::ServeResponse> DecodeResponse(const Frame& frame) {
  if (frame.verb != FrameVerb::kResponse) {
    return Status::InvalidArgument("expected a response frame, got " +
                                   std::string(FrameVerbName(frame.verb)));
  }
  if (frame.status > static_cast<uint16_t>(StatusCode::kBudgetExhausted)) {
    return Status::InvalidArgument(
        "malformed response frame: unknown status code " +
        std::to_string(frame.status));
  }
  std::istringstream in(frame.payload);
  PRIVSAN_ASSIGN_OR_RETURN(std::string message, ReadString(in));
  serve::ServeResponse response;
  response.status =
      frame.status == 0
          ? Status::OK()
          : Status(static_cast<StatusCode>(frame.status), std::move(message));
  uint8_t kind = 0;
  PRIVSAN_RETURN_IF_ERROR(ReadScalar(in, &kind));
  switch (kind) {
    case kPayloadNone:
      break;
    case kPayloadSolution: {
      PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution, ReadSolution(in));
      response.payload = std::move(solution);
      break;
    }
    case kPayloadSweep: {
      PRIVSAN_ASSIGN_OR_RETURN(SweepResult sweep, ReadSweep(in));
      response.payload = std::move(sweep);
      break;
    }
    case kPayloadReport: {
      PRIVSAN_ASSIGN_OR_RETURN(SanitizeReport report, ReadReport(in));
      response.payload = std::move(report);
      break;
    }
    case kPayloadStats: {
      serve::TenantStats stats;
      PRIVSAN_RETURN_IF_ERROR(ReadTenantStats(in, &stats));
      response.payload = stats;
      break;
    }
    case kPayloadMetrics: {
      serve::MetricsText metrics;
      PRIVSAN_ASSIGN_OR_RETURN(metrics.text, ReadString(in));
      response.payload = std::move(metrics);
      break;
    }
    case kPayloadSlowLog: {
      PRIVSAN_ASSIGN_OR_RETURN(serve::SlowLogDump dump, ReadSlowLogDump(in));
      response.payload = std::move(dump);
      break;
    }
    case kPayloadBudget: {
      PRIVSAN_ASSIGN_OR_RETURN(serve::BudgetStatus budget,
                               ReadBudgetStatus(in));
      response.payload = std::move(budget);
      break;
    }
    default:
      return Status::InvalidArgument(
          "malformed response frame: unknown payload kind " +
          std::to_string(kind));
  }
  PRIVSAN_RETURN_IF_ERROR(CheckDrained(in));
  return response;
}

Result<std::string> PeekTenant(const Frame& frame) {
  if (frame.verb == FrameVerb::kResponse) {
    return Status::InvalidArgument("response frames address no tenant");
  }
  std::istringstream in(frame.payload);
  return ReadString(in);
}

}  // namespace net
}  // namespace privsan
