// The blocking, pipelined client side of the binary wire protocol.
//
// A NetClient owns one TCP connection to a NetServer (or a router, which
// speaks the same frames). Send() encodes a request, assigns it the next
// request id and returns immediately; Receive() blocks for the next
// response, which the server guarantees arrives in send order — the id is
// verified as a cross-check, so a desynchronized stream fails loudly
// instead of mismatching replies. Call() is Send + Receive for the
// unpipelined case.
//
// Connect() retries with exponential backoff, because the fleet's process
// managers (the distributed bench, the CI cluster smoke) start clients
// and servers concurrently. A NetClient is single-threaded; the router
// serializes access per backend.
#ifndef PRIVSAN_NET_CLIENT_H_
#define PRIVSAN_NET_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "net/codec.h"
#include "net/frame.h"
#include "serve/api.h"
#include "util/result.h"

namespace privsan {
namespace net {

struct ClientOptions {
  // Connect retry schedule: total attempts, doubling delay between them.
  int connect_attempts = 30;
  int initial_backoff_ms = 20;
  int max_backoff_ms = 500;
  // Receive deadline: a server that hangs (rather than closing) fails the
  // Receive with IoError after this long and closes the connection, so
  // router workers — and migrations blocked on them — always terminate.
  // <= 0 waits forever. Generous by default: it only needs to be longer
  // than the slowest legitimate solve/sweep/migration reply.
  int receive_timeout_ms = 120'000;
};

class NetClient {
 public:
  NetClient() = default;  // disconnected; use Connect
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;

  static Result<NetClient> Connect(uint16_t port, ClientOptions options = {});

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Pipelined typed API: Send returns the assigned request id; Receive
  // blocks for the oldest in-flight request's response.
  Result<uint64_t> Send(const serve::ServeRequest& request);
  Result<serve::ServeResponse> Receive();
  Result<serve::ServeResponse> Call(const serve::ServeRequest& request);
  size_t pending() const { return inflight_.size(); }

  // Raw frame path (the router's proxy hot path): the caller manages ids.
  Status SendFrame(const Frame& frame);
  Result<Frame> ReceiveFrame();

 private:
  int fd_ = -1;
  int receive_timeout_ms_ = 0;  // set from ClientOptions in Connect
  uint64_t next_id_ = 1;
  std::deque<uint64_t> inflight_;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace privsan

#endif  // PRIVSAN_NET_CLIENT_H_
