// (ε, δ)-probabilistic differential privacy parameters (Definition 2).
#ifndef PRIVSAN_CORE_PRIVACY_PARAMS_H_
#define PRIVSAN_CORE_PRIVACY_PARAMS_H_

#include <string>

#include "util/result.h"

namespace privsan {

// Parameters of (ε, δ)-probabilistic differential privacy. Both Theorem-1
// conditions merge into one linear budget per user log:
//
//   sum_{(i,j) in A_k} x_ij * log t_ijk  <=  min{ε, log(1/(1−δ))}   (Eq. 4)
//
// Budget() returns that right-hand side.
struct PrivacyParams {
  double epsilon = 0.0;
  double delta = 0.0;

  // Constructs from e^ε (the paper's tables index by e^ε) and δ.
  static PrivacyParams FromEEpsilon(double e_epsilon, double delta);

  // Requires ε > 0 and 0 < δ < 1.
  Status Validate() const;

  // min{ε, log(1/(1−δ))}: the merged Condition-2/3 right-hand side.
  double Budget() const;

  // Whether the δ condition (Condition 3) is the binding one.
  bool DeltaBound() const;

  std::string ToString() const;
};

}  // namespace privsan

#endif  // PRIVSAN_CORE_PRIVACY_PARAMS_H_
