// End-to-end differential privacy for the count computation step (§4.2).
//
// The multinomial sampler is differentially private given the counts, but
// computing the optimal counts x* from D is itself a query against D. The
// paper makes that step ε′-differentially private the generic way:
//
//   1. bound the sensitivity of every pair's optimal count by d, by removing
//      any user log whose deletion would shift some optimal count by more
//      than d (leave-one-user-out re-solves of the same UMP);
//   2. add Lap(d/ε′) noise to every optimal count.
//
// Noise can push the counts outside the DP polytope; the paper accepts this
// as "likely fine" (zero-mean noise). privsan additionally offers a repair
// mode that scales the noisy vector back into the polytope, restoring the
// sampling-stage guarantee exactly at a small utility cost.
#ifndef PRIVSAN_CORE_LAPLACE_STEP_H_
#define PRIVSAN_CORE_LAPLACE_STEP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "log/search_log.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {

struct LaplaceStepOptions {
  // Sensitivity bound d (>0) and the count-computation privacy budget ε′.
  double d = 1.0;
  double epsilon_prime = 1.0;
  uint64_t seed = 42;
  // If true, rescale the noisy counts so every DP row fits its budget again
  // (multiplying all counts by one factor preserves their relative shape).
  bool repair_feasibility = true;
};

struct LaplaceStepResult {
  std::vector<uint64_t> x;  // noisy (and possibly repaired) counts
  double scale_applied = 1.0;  // 1.0 when no repair was needed
  uint64_t total = 0;
};

// Adds Lap(d/ε′) to each optimal count, clamps at 0, floors, and (optionally)
// repairs feasibility against the DP rows of `log`.
Result<LaplaceStepResult> AddLaplaceNoise(const SearchLog& log,
                                          const PrivacyParams& params,
                                          std::span<const double> x_optimal,
                                          const LaplaceStepOptions& options);

struct SensitivityBoundResult {
  SearchLog log;             // input with offending user logs removed
  size_t users_removed = 0;
  // Largest per-pair optimal-count shift observed among *retained* users.
  double max_shift_retained = 0.0;
};

// The §4.2 preprocessing pass for O-UMP: for every user log A_k, re-solve
// O-UMP on D − A_k and drop A_k if any pair's optimal count moves by more
// than d. One pass over the users of `log` (the paper leaves the iteration
// order unspecified; a single pass is the cheapest faithful reading).
// Cost: one LP solve per user — intended for small logs and the ablation
// bench, not the hot path.
Result<SensitivityBoundResult> BoundOumpSensitivity(
    const SearchLog& log, const PrivacyParams& params, double d,
    const lp::SimplexOptions& simplex = {});

}  // namespace privsan

#endif  // PRIVSAN_CORE_LAPLACE_STEP_H_
