// F-UMP: the Frequent query-url pair Utility-Maximizing Problem (§5.2).
//
// Given a minimum support s and a fixed output size |O| in (0, λ]:
//
//   min  sum over frequent pairs f of  | x_f/|O| − c_f/|D| |
//   s.t. DP rows (Eq. 4),  sum_ij x_ij = |O|,  x >= 0 integer,
//
// where a pair is frequent iff c_f / |D| >= s. The absolute values are
// linearized in the standard way with auxiliary variables
//   y_f >= x_f/|O| − c_f/|D|   and   y_f >= c_f/|D| − x_f/|O|,
// turning F-UMP into an LP (Statement 2), solved with linear relaxation and
// floored. Flooring keeps the DP rows satisfied (all coefficients >= 0) but
// may land the realized output size slightly below the requested |O|.
#ifndef PRIVSAN_CORE_FUMP_H_
#define PRIVSAN_CORE_FUMP_H_

#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "core/ump.h"
#include "log/search_log.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {

struct FumpOptions {
  // Minimum support s; a pair is frequent iff c_ij / |D| >= s.
  double min_support = 1.0 / 500;
  // Requested output size |O|; must be positive and at most λ (the O-UMP
  // optimum) or the LP is infeasible.
  uint64_t output_size = 0;
  // Realize the paper's empirical "Precision = 1" finding structurally:
  // infrequent pairs get the upper bound ⌈s|O|⌉ − 1 in the LP (no pair can
  // become frequent in the output that was not frequent in the input), and
  // after rounding any infrequent count still at/over the threshold of the
  // realized size is clamped below it. The objective never involves
  // infrequent pairs, so their caps do not change the optimal support
  // distances; if the capped LP is infeasible the solver falls back to the
  // uncapped formulation.
  bool enforce_precision = true;
  lp::SimplexOptions simplex;
};

struct FumpResult {
  // Rounded optimal counts per PairId: floored, then topped back up toward
  // |O| by largest fractional remainder while the DP rows permit.
  std::vector<uint64_t> x;
  std::vector<double> x_relaxed;  // LP optimum
  uint64_t realized_output_size = 0;  // sum of rounded counts
  // LP objective: minimum sum of support distances over frequent pairs.
  double support_distance_sum = 0.0;
  std::vector<PairId> frequent_pairs;  // the input's frequent set S0
  int64_t simplex_iterations = 0;
  int simplex_refactorizations = 0;
  bool used_precision_caps = false;  // false when the fallback was taken
};

// `log` must be preprocessed (no unique pairs).
//
// DEPRECATED: one-shot compatibility wrapper over MakeFumpProblem
// (core/ump.h). It rebuilds the DP rows, the frequent set and the LP model
// on every call; use UmpProblem / SanitizerSession (core/session.h) for
// repeated solves and (ε, δ, |O|) sweeps.
PRIVSAN_DEPRECATED("use MakeFumpProblem / SanitizerSession (core/ump.h)")
Result<FumpResult> SolveFump(const SearchLog& log, const PrivacyParams& params,
                             const FumpOptions& options);

// The frequent set S0 = {pairs with support >= s} of `log`.
std::vector<PairId> FrequentPairs(const SearchLog& log, double min_support);

}  // namespace privsan

#endif  // PRIVSAN_CORE_FUMP_H_
