#include "core/rounding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace privsan {

std::vector<uint64_t> RoundCounts(const DpConstraintSystem& system,
                                  std::span<const double> relaxed,
                                  const RoundingOptions& options) {
  const size_t n = relaxed.size();
  PRIVSAN_CHECK(n == system.num_pairs());
  PRIVSAN_CHECK(options.caps.empty() || options.caps.size() == n);

  auto capped = [&](PairId p, uint64_t value) {
    return options.caps.empty() ? value : std::min(value, options.caps[p]);
  };

  // Stage 1: floor (with a snap tolerance so 4.9999997 counts as 5).
  std::vector<uint64_t> x(n);
  std::vector<double> remainder(n);
  uint64_t total = 0;
  for (PairId p = 0; p < n; ++p) {
    const double value = std::max(0.0, relaxed[p]);
    const double floored = std::floor(value + 1e-7);
    x[p] = capped(p, static_cast<uint64_t>(floored));
    remainder[p] = value - floored;
    total += x[p];
  }
  if (!options.repair && !options.greedy_fill) return x;
  if (options.target_total > 0 && total >= options.target_total) return x;

  // Row state for incremental feasibility checks.
  std::vector<double> row_lhs(system.num_rows(), 0.0);
  for (size_t r = 0; r < system.num_rows(); ++r) {
    row_lhs[r] = system.RowLhs(r, std::span<const uint64_t>(x));
  }
  std::vector<std::vector<std::pair<size_t, double>>> pair_rows(n);
  std::vector<double> max_weight(n, 0.0);
  for (size_t r = 0; r < system.num_rows(); ++r) {
    for (const DpConstraintEntry& e : system.Row(r)) {
      pair_rows[e.pair].emplace_back(r, e.log_t);
      max_weight[e.pair] = std::max(max_weight[e.pair], e.log_t);
    }
  }
  auto admit = [&](PairId p) {
    if (!options.caps.empty() && x[p] + 1 > options.caps[p]) return false;
    for (const auto& [r, weight] : pair_rows[p]) {
      if (row_lhs[r] + weight > system.budget() + 1e-12) return false;
    }
    for (const auto& [r, weight] : pair_rows[p]) row_lhs[r] += weight;
    ++x[p];
    ++total;
    return true;
  };
  auto reached_target = [&]() {
    return options.target_total > 0 && total >= options.target_total;
  };

  // Stage 2: largest-remainder repair.
  if (options.repair) {
    std::vector<PairId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](PairId a, PairId b) {
      return remainder[a] > remainder[b];
    });
    for (PairId p : order) {
      if (reached_target()) return x;
      if (remainder[p] <= 1e-9) break;  // sorted: the rest are zero too
      admit(p);
    }
  }

  // Stage 3: greedy fill, cheapest worst-row weight first; keep sweeping
  // until a full pass admits nothing.
  if (options.greedy_fill) {
    std::vector<PairId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](PairId a, PairId b) {
      return max_weight[a] < max_weight[b];
    });
    bool progress = true;
    while (progress && !reached_target()) {
      progress = false;
      for (PairId p : order) {
        if (reached_target()) break;
        if (admit(p)) progress = true;
      }
    }
  }
  return x;
}

}  // namespace privsan
