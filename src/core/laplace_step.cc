#include "core/laplace_step.h"

#include <algorithm>
#include <cmath>

#include "core/oump.h"
#include "log/preprocess.h"
#include "rng/distributions.h"
#include "rng/random.h"

namespace privsan {

Result<LaplaceStepResult> AddLaplaceNoise(const SearchLog& log,
                                          const PrivacyParams& params,
                                          std::span<const double> x_optimal,
                                          const LaplaceStepOptions& options) {
  if (x_optimal.size() != log.num_pairs()) {
    return Status::InvalidArgument(
        "count vector size does not match the log's pair count");
  }
  if (!(options.d > 0.0) || !(options.epsilon_prime > 0.0)) {
    return Status::InvalidArgument("d and epsilon_prime must be > 0");
  }
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));

  Rng rng(options.seed);
  const double scale = options.d / options.epsilon_prime;
  std::vector<double> noisy(x_optimal.begin(), x_optimal.end());
  for (double& v : noisy) {
    v = std::max(0.0, v + SampleLaplace(rng, scale));
  }

  LaplaceStepResult result;
  if (options.repair_feasibility) {
    // One multiplicative shrink restores every row: the rows are linear in
    // x with non-negative coefficients.
    double worst = 1.0;
    for (size_t r = 0; r < system.num_rows(); ++r) {
      const double lhs = system.RowLhs(r, std::span<const double>(noisy));
      if (lhs > system.budget()) {
        worst = std::max(worst, lhs / system.budget());
      }
    }
    if (worst > 1.0) {
      const double factor = 1.0 / worst;
      for (double& v : noisy) v *= factor;
      result.scale_applied = factor;
    }
  }

  result.x.resize(noisy.size());
  for (size_t p = 0; p < noisy.size(); ++p) {
    result.x[p] = static_cast<uint64_t>(std::floor(noisy[p]));
    result.total += result.x[p];
  }
  return result;
}

Result<SensitivityBoundResult> BoundOumpSensitivity(
    const SearchLog& log, const PrivacyParams& params, double d,
    const lp::SimplexOptions& simplex) {
  if (!(d > 0.0)) {
    return Status::InvalidArgument("d must be > 0");
  }
  OumpOptions oump_options;
  oump_options.simplex = simplex;
  PRIVSAN_ASSIGN_OR_RETURN(OumpResult base, SolveOump(log, params,
                                                      oump_options));

  SensitivityBoundResult result;
  std::vector<bool> drop(log.num_users(), false);
  for (UserId u = 0; u < log.num_users(); ++u) {
    if (log.UserLogOf(u).empty()) continue;
    // Rebuild D − A_k. Pairs held only by u become unique (or empty) in the
    // leave-one-out log and are removed there, matching the paper's
    // preprocessing of the neighboring input.
    SearchLogBuilder builder;
    for (UserId v = 0; v < log.num_users(); ++v) {
      if (v == u) continue;
      for (const PairCount& cell : log.UserLogOf(v)) {
        builder.Add(log.user_name(v),
                    log.query_name(log.pair_query(cell.pair)),
                    log.url_name(log.pair_url(cell.pair)), cell.count);
      }
    }
    PreprocessResult cleaned = RemoveUniquePairs(builder.Build());
    PRIVSAN_ASSIGN_OR_RETURN(OumpResult without,
                             SolveOump(cleaned.log, params, oump_options));

    // Compare per-pair counts by (query, url) identity.
    double max_shift = 0.0;
    std::vector<double> matched(log.num_pairs(), 0.0);
    for (PairId q = 0; q < cleaned.log.num_pairs(); ++q) {
      auto found = log.FindPair(
          cleaned.log.query_name(cleaned.log.pair_query(q)),
          cleaned.log.url_name(cleaned.log.pair_url(q)));
      if (found.ok()) matched[*found] = without.x_relaxed[q];
    }
    for (PairId p = 0; p < log.num_pairs(); ++p) {
      max_shift = std::max(max_shift,
                           std::abs(base.x_relaxed[p] - matched[p]));
    }
    if (max_shift > d) {
      drop[u] = true;
      ++result.users_removed;
    } else {
      result.max_shift_retained =
          std::max(result.max_shift_retained, max_shift);
    }
  }

  SearchLogBuilder retained;
  for (UserId u = 0; u < log.num_users(); ++u) {
    if (drop[u]) continue;
    for (const PairCount& cell : log.UserLogOf(u)) {
      retained.Add(log.user_name(u),
                   log.query_name(log.pair_query(cell.pair)),
                   log.url_name(log.pair_url(cell.pair)), cell.count);
    }
  }
  // Dropping users can create fresh unique pairs; re-apply Condition 1.
  result.log = RemoveUniquePairs(retained.Build()).log;
  return result;
}

}  // namespace privsan
