#include "core/oump.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/rounding.h"

namespace privsan {

Result<OumpResult> SolveOump(const SearchLog& log, const PrivacyParams& params,
                             const OumpOptions& options) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::BuildRows(log));
  OumpSpec spec;
  spec.cap_counts_at_input = options.cap_counts_at_input;
  PRIVSAN_ASSIGN_OR_RETURN(
      std::unique_ptr<UmpProblem> problem,
      MakeOumpProblem(log, &system, spec, options.simplex));
  UmpQuery query;
  query.privacy = params;
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution, problem->Solve(query));

  OumpResult result;
  result.x = std::move(solution.x);
  result.x_relaxed = std::move(solution.x_relaxed);
  result.lambda = solution.output_size;
  result.lp_objective = solution.objective_value;
  result.simplex_iterations = solution.stats.simplex_iterations;
  result.simplex_refactorizations = solution.stats.refactorizations;
  return result;
}

Result<OumpScalingBase> SolveOumpUnitBudget(
    const SearchLog& log, const lp::SimplexOptions& simplex) {
  // delta = 1 - 1/e^2 makes log(1/(1-delta)) = 2 > epsilon = 1, so the
  // budget is exactly 1.
  PrivacyParams unit{1.0, 1.0 - std::exp(-2.0)};
  OumpOptions options;
  options.simplex = simplex;
  PRIVSAN_ASSIGN_OR_RETURN(OumpResult result, SolveOump(log, unit, options));
  OumpScalingBase base;
  base.x_unit = std::move(result.x_relaxed);
  base.lp_objective_unit = result.lp_objective;
  base.simplex_iterations = result.simplex_iterations;
  return base;
}

Result<OumpResult> RoundScaledOump(const SearchLog& log,
                                   const PrivacyParams& params,
                                   const OumpScalingBase& base) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));
  if (base.x_unit.size() != log.num_pairs()) {
    return Status::InvalidArgument(
        "scaling base does not match this log's pair count");
  }
  OumpResult result;
  const double budget = params.Budget();
  result.x_relaxed.resize(base.x_unit.size());
  for (size_t p = 0; p < base.x_unit.size(); ++p) {
    result.x_relaxed[p] = base.x_unit[p] * budget;
  }
  result.lp_objective = base.lp_objective_unit * budget;
  result.simplex_iterations = 0;  // no simplex run for this cell
  result.x = RoundCounts(system, result.x_relaxed, RoundingOptions{});
  for (uint64_t v : result.x) result.lambda += v;
  return result;
}

}  // namespace privsan
