#include "core/oump.h"

#include <cmath>

#include "core/rounding.h"
#include "lp/model.h"

namespace privsan {

Result<OumpResult> SolveOump(const SearchLog& log, const PrivacyParams& params,
                             const OumpOptions& options) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));

  lp::LpModel model(lp::ObjectiveSense::kMaximize);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const double upper = options.cap_counts_at_input
                             ? static_cast<double>(log.pair_total(p))
                             : lp::kInfinity;
    model.AddVariable(0.0, upper, 1.0);
  }
  for (size_t r = 0; r < system.num_rows(); ++r) {
    const int row =
        model.AddConstraint(lp::ConstraintSense::kLessEqual, system.budget());
    for (const DpConstraintEntry& e : system.Row(r)) {
      model.AddCoefficient(row, static_cast<int>(e.pair), e.log_t);
    }
  }
  PRIVSAN_RETURN_IF_ERROR(model.Validate());

  lp::SimplexSolver solver(options.simplex);
  lp::LpSolution lp = solver.Solve(model);
  if (lp.status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("O-UMP LP solve failed: ") +
                            lp::SolveStatusToString(lp.status));
  }

  OumpResult result;
  result.x_relaxed = lp.x;
  result.lp_objective = lp.objective;
  result.simplex_iterations = lp.iterations;
  result.simplex_refactorizations = lp.refactorizations;

  // Round toward the ILP optimum: floor, largest-remainder repair, then
  // greedy fill (core/rounding.h). The result stays below the LP bound.
  RoundingOptions rounding;
  std::vector<uint64_t> caps;
  if (options.cap_counts_at_input) {
    caps.resize(log.num_pairs());
    for (PairId p = 0; p < log.num_pairs(); ++p) {
      caps[p] = log.pair_total(p);
    }
    rounding.caps = caps;
  }
  result.x = RoundCounts(system, lp.x, rounding);
  for (uint64_t v : result.x) result.lambda += v;
  return result;
}

Result<OumpScalingBase> SolveOumpUnitBudget(
    const SearchLog& log, const lp::SimplexOptions& simplex) {
  // delta = 1 - 1/e^2 makes log(1/(1-delta)) = 2 > epsilon = 1, so the
  // budget is exactly 1.
  PrivacyParams unit{1.0, 1.0 - std::exp(-2.0)};
  OumpOptions options;
  options.simplex = simplex;
  PRIVSAN_ASSIGN_OR_RETURN(OumpResult result, SolveOump(log, unit, options));
  OumpScalingBase base;
  base.x_unit = std::move(result.x_relaxed);
  base.lp_objective_unit = result.lp_objective;
  base.simplex_iterations = result.simplex_iterations;
  return base;
}

Result<OumpResult> RoundScaledOump(const SearchLog& log,
                                   const PrivacyParams& params,
                                   const OumpScalingBase& base) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));
  if (base.x_unit.size() != log.num_pairs()) {
    return Status::InvalidArgument(
        "scaling base does not match this log's pair count");
  }
  OumpResult result;
  const double budget = params.Budget();
  result.x_relaxed.resize(base.x_unit.size());
  for (size_t p = 0; p < base.x_unit.size(); ++p) {
    result.x_relaxed[p] = base.x_unit[p] * budget;
  }
  result.lp_objective = base.lp_objective_unit * budget;
  result.simplex_iterations = 0;  // no simplex run for this cell
  result.x = RoundCounts(system, result.x_relaxed, RoundingOptions{});
  for (uint64_t v : result.x) result.lambda += v;
  return result;
}

}  // namespace privsan
