#include "core/dump.h"

#include <memory>
#include <utility>

namespace privsan {

lp::BipProblem BipFromConstraintRows(const DpConstraintSystem& system) {
  lp::BipProblem problem;
  problem.num_rows = static_cast<int>(system.num_rows());
  problem.rhs.assign(system.num_rows(), system.budget());
  problem.columns.assign(system.num_pairs(), {});
  for (size_t r = 0; r < system.num_rows(); ++r) {
    for (const DpConstraintEntry& e : system.Row(r)) {
      problem.columns[e.pair].push_back(
          lp::SparseEntry{static_cast<int>(r), e.log_t});
    }
  }
  return problem;
}

Result<lp::BipProblem> BuildDumpBip(const SearchLog& log,
                                    const PrivacyParams& params) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));
  return BipFromConstraintRows(system);
}

Result<DumpResult> SolveDump(const SearchLog& log, const PrivacyParams& params,
                             const DumpOptions& options) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::BuildRows(log));
  DumpSpec spec;
  spec.solver = options.solver;
  spec.bnb = options.bnb;
  spec.integer_presolve = options.integer_presolve;
  PRIVSAN_ASSIGN_OR_RETURN(
      std::unique_ptr<UmpProblem> problem,
      MakeDumpProblem(log, &system, spec, options.simplex));
  UmpQuery query;
  query.privacy = params;
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution, problem->Solve(query));

  DumpResult result;
  result.x = std::move(solution.x);
  result.retained = static_cast<int64_t>(solution.output_size);
  result.diversity_ratio =
      log.num_pairs() == 0
          ? 0.0
          : static_cast<double>(result.retained) /
                static_cast<double>(log.num_pairs());
  result.wall_seconds = solution.stats.wall_seconds;
  result.proven_optimal = solution.proven_optimal;
  result.lp_iterations = solution.stats.simplex_iterations;
  result.lp_refactorizations = solution.stats.refactorizations;
  result.nodes_explored = solution.stats.nodes_explored;
  result.warm_solves = solution.stats.warm_solves;
  result.integer_fixed = solution.stats.integer_fixed;
  return result;
}

}  // namespace privsan
