#include "core/dump.h"

#include "core/spe.h"
#include "util/timer.h"

namespace privsan {

const char* DumpSolverKindToString(DumpSolverKind kind) {
  switch (kind) {
    case DumpSolverKind::kSpe:
      return "SPE";
    case DumpSolverKind::kGreedy:
      return "Greedy";
    case DumpSolverKind::kLpRounding:
      return "LP-round";
    case DumpSolverKind::kBranchAndBound:
      return "B&B";
  }
  return "?";
}

Result<lp::BipProblem> BuildDumpBip(const SearchLog& log,
                                    const PrivacyParams& params) {
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));
  lp::BipProblem problem;
  problem.num_rows = static_cast<int>(system.num_rows());
  problem.rhs.assign(system.num_rows(), system.budget());
  problem.columns.resize(log.num_pairs());
  for (size_t r = 0; r < system.num_rows(); ++r) {
    for (const DpConstraintEntry& e : system.Row(r)) {
      problem.columns[e.pair].push_back(
          lp::SparseEntry{static_cast<int>(r), e.log_t});
    }
  }
  return problem;
}

Result<DumpResult> SolveDump(const SearchLog& log, const PrivacyParams& params,
                             const DumpOptions& options) {
  PRIVSAN_ASSIGN_OR_RETURN(lp::BipProblem problem,
                           BuildDumpBip(log, params));
  WallTimer timer;
  DumpResult result;

  std::vector<uint8_t> y;
  switch (options.solver) {
    case DumpSolverKind::kSpe: {
      PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution s, SolveSpe(problem));
      y = std::move(s.y);
      break;
    }
    case DumpSolverKind::kGreedy: {
      PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution s, SolveBipGreedy(problem));
      y = std::move(s.y);
      break;
    }
    case DumpSolverKind::kLpRounding: {
      PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution s,
                               SolveBipLpRounding(problem, options.simplex));
      y = std::move(s.y);
      result.lp_iterations = s.lp_iterations;
      result.lp_refactorizations = s.lp_refactorizations;
      break;
    }
    case DumpSolverKind::kBranchAndBound: {
      lp::LpModel model = problem.ToLpModel();
      PRIVSAN_RETURN_IF_ERROR(model.Validate());
      lp::BnbResult bnb = SolveBranchAndBound(model, options.bnb);
      if (!bnb.has_incumbent) {
        return Status::Internal("branch & bound found no incumbent");
      }
      y.resize(problem.num_vars());
      for (int j = 0; j < problem.num_vars(); ++j) {
        y[j] = bnb.x[j] > 0.5 ? 1 : 0;
      }
      result.proven_optimal = bnb.proven_optimal;
      result.lp_iterations = bnb.lp_iterations;
      result.lp_refactorizations = bnb.lp_refactorizations;
      result.nodes_explored = bnb.nodes_explored;
      result.warm_solves = bnb.warm_solves;
      break;
    }
  }

  result.wall_seconds = timer.ElapsedSeconds();
  result.x.assign(y.begin(), y.end());
  for (uint64_t v : result.x) result.retained += static_cast<int64_t>(v);
  result.diversity_ratio =
      log.num_pairs() == 0
          ? 0.0
          : static_cast<double>(result.retained) /
                static_cast<double>(log.num_pairs());
  return result;
}

}  // namespace privsan
