// SPE: the Sensitive query-url Pair Eliminating heuristic (Algorithm 2).
//
// Solves the D-UMP BIP approximately: start from y = 1 for every pair and
// repeatedly eliminate the pair with the largest coefficient t_ijk — the
// pair most dominated by a single user, hence most privacy-sensitive —
// until every user row satisfies its budget.
//
// Two refinements over the paper's literal pseudocode, both documented in
// DESIGN.md:
//   1. the argmax is taken over entries of *violated* rows only —
//      eliminating a pair whose rows are all satisfied cannot help
//      termination, so skipping those removals retains at least as many
//      pairs while following the same max-t_ijk order where it matters;
//   2. a refill pass re-admits eliminated pairs (least sensitive first)
//      that still fit after the loop ends, making the solution maximal —
//      the quality the paper reports for SPE (Table 7) requires maximal
//      solutions.
#ifndef PRIVSAN_CORE_SPE_H_
#define PRIVSAN_CORE_SPE_H_

#include "lp/bip_heuristics.h"
#include "util/result.h"

namespace privsan {

// `problem` rows are the DP rows (weights log t_ijk, capacity the budget).
// Runs in O(nnz log nnz) with a lazy max-heap.
Result<lp::BipSolution> SolveSpe(const lp::BipProblem& problem);

}  // namespace privsan

#endif  // PRIVSAN_CORE_SPE_H_
