#include "core/sampler.h"

#include "rng/alias_table.h"
#include "rng/random.h"

namespace privsan {

namespace {

Status ValidateCounts(const SearchLog& input, std::span<const uint64_t> x) {
  if (x.size() != input.num_pairs()) {
    return Status::InvalidArgument(
        "output count vector size does not match the input's pair count");
  }
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    if (x[p] > 0 && input.PairUserCount(p) <= 1) {
      return Status::FailedPrecondition(
          "positive output count on a unique query-url pair would break "
          "Condition 1 of Theorem 1 (pair '" +
          input.query_name(input.pair_query(p)) + "', '" +
          input.url_name(input.pair_url(p)) + "')");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<uint64_t>>> SampleTripletCounts(
    const SearchLog& input, std::span<const uint64_t> x, uint64_t seed) {
  PRIVSAN_RETURN_IF_ERROR(ValidateCounts(input, x));
  Rng rng(seed);
  std::vector<std::vector<uint64_t>> sampled(input.num_pairs());
  std::vector<double> weights;
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    auto triplets = input.TripletsOf(p);
    sampled[p].assign(triplets.size(), 0);
    if (x[p] == 0) continue;
    weights.clear();
    weights.reserve(triplets.size());
    for (const UserCount& cell : triplets) {
      weights.push_back(static_cast<double>(cell.count));
    }
    PRIVSAN_ASSIGN_OR_RETURN(AliasTable table, AliasTable::Build(weights));
    for (uint64_t trial = 0; trial < x[p]; ++trial) {
      ++sampled[p][table.Sample(rng)];
    }
  }
  return sampled;
}

Result<SearchLog> SampleOutput(const SearchLog& input,
                               std::span<const uint64_t> x, uint64_t seed) {
  PRIVSAN_ASSIGN_OR_RETURN(std::vector<std::vector<uint64_t>> sampled,
                           SampleTripletCounts(input, x, seed));
  SearchLogBuilder builder;
  for (PairId p = 0; p < input.num_pairs(); ++p) {
    auto triplets = input.TripletsOf(p);
    const std::string& query = input.query_name(input.pair_query(p));
    const std::string& url = input.url_name(input.pair_url(p));
    for (size_t i = 0; i < triplets.size(); ++i) {
      if (sampled[p][i] == 0) continue;
      builder.Add(input.user_name(triplets[i].user), query, url,
                  sampled[p][i]);
    }
  }
  return builder.Build();
}

}  // namespace privsan
