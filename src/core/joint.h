// Joint utility maximization — the multi-objective extension sketched in
// Section 7 of the paper ("explore ways of combining different utility
// notions to create a single joint objective").
//
// privsan implements the natural scalarization of O-UMP and F-UMP:
//
//   max  size_weight · (sum_ij x_ij) / λ_norm
//        − distance_weight · (sum over frequent f of |x_f/λ_norm − s_f|·|D|/λ_norm)
//
// subject to the Theorem-1 DP rows. Rather than fixing the output size |O|
// (F-UMP) or ignoring support fidelity entirely (O-UMP), the weights trade
// the two off along a Pareto frontier:
//   * distance_weight = 0 recovers O-UMP exactly;
//   * size_weight → 0 drives the solution to the support-optimal shape.
// Normalization uses λ (the O-UMP optimum) so both terms are O(1) and the
// weights are scale-free.
#ifndef PRIVSAN_CORE_JOINT_H_
#define PRIVSAN_CORE_JOINT_H_

#include <cstdint>
#include <vector>

#include "core/privacy_params.h"
#include "log/search_log.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {

struct JointUmpOptions {
  double size_weight = 1.0;      // >= 0
  double distance_weight = 1.0;  // >= 0; both zero is invalid
  double min_support = 1.0 / 500;
  lp::SimplexOptions simplex;
};

struct JointUmpResult {
  std::vector<uint64_t> x;        // rounded counts per PairId
  std::vector<double> x_relaxed;  // LP optimum
  uint64_t output_size = 0;
  double objective = 0.0;  // scalarized LP objective
  // Components at the relaxed optimum, for Pareto analysis.
  double relaxed_size = 0.0;
  double relaxed_distance_sum = 0.0;
  uint64_t lambda = 0;  // the O-UMP optimum used for normalization
};

// `log` must be preprocessed (no unique pairs).
Result<JointUmpResult> SolveJointUmp(const SearchLog& log,
                                     const PrivacyParams& params,
                                     const JointUmpOptions& options = {});

}  // namespace privsan

#endif  // PRIVSAN_CORE_JOINT_H_
