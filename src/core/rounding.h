// Integral rounding of relaxed UMP solutions against the DP rows.
//
// The paper solves the UMP ILPs by linear relaxation and flooring (⌊x*⌋
// stays feasible because M, b >= 0). Plain flooring is wasteful when the
// relaxed optimum spreads fractional mass over many pairs — the floor can
// lose nearly everything. privsan rounds in three stages, each preserving
// feasibility:
//   1. floor every count;
//   2. largest-remainder repair: re-add the floored-away units, biggest
//      fractional part first, while every DP row still fits;
//   3. greedy fill: keep admitting +1 increments (cheapest worst-row
//      coefficient first) until no pair can take another unit.
// The result is an integral point between ⌊x*⌋ and the true ILP optimum.
#ifndef PRIVSAN_CORE_ROUNDING_H_
#define PRIVSAN_CORE_ROUNDING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/constraints.h"

namespace privsan {

struct RoundingOptions {
  // Stage-2/3 behavior.
  bool repair = true;       // largest-remainder re-adds
  bool greedy_fill = true;  // keep filling past the relaxed point
  // Stop adding once the total reaches this value (0 = no target; fill as
  // far as the rows allow). F-UMP uses it to hold sum x == |O|.
  uint64_t target_total = 0;
  // Optional per-pair upper bounds (empty = unbounded).
  std::span<const uint64_t> caps;
};

// Rounds `relaxed` (indexed by PairId) against `system`'s rows.
std::vector<uint64_t> RoundCounts(const DpConstraintSystem& system,
                                  std::span<const double> relaxed,
                                  const RoundingOptions& options = {});

}  // namespace privsan

#endif  // PRIVSAN_CORE_ROUNDING_H_
