#include "core/fump.h"

#include <memory>
#include <utility>

namespace privsan {

std::vector<PairId> FrequentPairs(const SearchLog& log, double min_support) {
  std::vector<PairId> frequent;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (log.PairSupport(p) >= min_support) frequent.push_back(p);
  }
  return frequent;
}

Result<FumpResult> SolveFump(const SearchLog& log, const PrivacyParams& params,
                             const FumpOptions& options) {
  if (options.output_size == 0) {
    return Status::InvalidArgument("F-UMP requires output_size > 0");
  }
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::BuildRows(log));
  FumpSpec spec;
  spec.min_support = options.min_support;
  spec.enforce_precision = options.enforce_precision;
  PRIVSAN_ASSIGN_OR_RETURN(
      std::unique_ptr<UmpProblem> problem,
      MakeFumpProblem(log, &system, spec, options.simplex));
  UmpQuery query;
  query.privacy = params;
  query.output_size = options.output_size;
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution, problem->Solve(query));

  FumpResult result;
  result.x = std::move(solution.x);
  result.x_relaxed = std::move(solution.x_relaxed);
  result.realized_output_size = solution.output_size;
  result.support_distance_sum = solution.objective_value;
  result.frequent_pairs = std::move(solution.frequent_pairs);
  result.simplex_iterations = solution.stats.simplex_iterations;
  result.simplex_refactorizations = solution.stats.refactorizations;
  result.used_precision_caps = solution.used_precision_caps;
  return result;
}

}  // namespace privsan
