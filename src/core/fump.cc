#include "core/fump.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/model.h"

namespace privsan {

std::vector<PairId> FrequentPairs(const SearchLog& log, double min_support) {
  std::vector<PairId> frequent;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (log.PairSupport(p) >= min_support) frequent.push_back(p);
  }
  return frequent;
}

namespace {

// Largest x an infrequent pair may take while staying strictly below
// support `s` of an output of size `total`: x < s * total.
uint64_t InfrequentCap(double min_support, double total) {
  const double threshold = min_support * total;
  double cap = std::ceil(threshold) - 1.0;
  if (std::floor(threshold) == threshold) cap = threshold - 1.0;
  return cap <= 0.0 ? 0 : static_cast<uint64_t>(cap);
}

// Builds and solves the F-UMP LP; `cap` (if nonzero-size) gives per-pair
// upper bounds for infrequent pairs.
lp::LpSolution SolveLp(const SearchLog& log, const DpConstraintSystem& system,
                       const std::vector<PairId>& frequent,
                       const FumpOptions& options, bool with_caps) {
  const double output_size = static_cast<double>(options.output_size);
  const double inv_output = 1.0 / output_size;
  const double total = static_cast<double>(log.total_clicks());

  std::vector<bool> is_frequent(log.num_pairs(), false);
  for (PairId f : frequent) is_frequent[f] = true;
  const double infrequent_cap = static_cast<double>(
      InfrequentCap(options.min_support, output_size));

  lp::LpModel model(lp::ObjectiveSense::kMinimize);
  // x variables, one per pair.
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const double upper =
        (with_caps && !is_frequent[p]) ? infrequent_cap : lp::kInfinity;
    model.AddVariable(0.0, upper, 0.0);
  }
  // y variables, one per frequent pair; objective = sum y_f.
  std::vector<int> y_var(log.num_pairs(), -1);
  for (PairId f : frequent) {
    y_var[f] = model.AddVariable(0.0, lp::kInfinity, 1.0);
  }

  // DP rows (Equation 4).
  for (size_t r = 0; r < system.num_rows(); ++r) {
    const int row =
        model.AddConstraint(lp::ConstraintSense::kLessEqual, system.budget());
    for (const DpConstraintEntry& e : system.Row(r)) {
      model.AddCoefficient(row, static_cast<int>(e.pair), e.log_t);
    }
  }
  // sum_ij x_ij = |O|.
  {
    const int row = model.AddConstraint(lp::ConstraintSense::kEqual,
                                        output_size, "output_size");
    for (PairId p = 0; p < log.num_pairs(); ++p) {
      model.AddCoefficient(row, static_cast<int>(p), 1.0);
    }
  }
  // Absolute-value split per frequent pair f with support s_f = c_f / |D|:
  //   x_f/|O| − y_f <= s_f     and     x_f/|O| + y_f >= s_f.
  for (PairId f : frequent) {
    const double support = static_cast<double>(log.pair_total(f)) / total;
    int row = model.AddConstraint(lp::ConstraintSense::kLessEqual, support);
    model.AddCoefficient(row, static_cast<int>(f), inv_output);
    model.AddCoefficient(row, y_var[f], -1.0);
    row = model.AddConstraint(lp::ConstraintSense::kGreaterEqual, support);
    model.AddCoefficient(row, static_cast<int>(f), inv_output);
    model.AddCoefficient(row, y_var[f], 1.0);
  }
  Status status = model.Validate();
  if (!status.ok()) {
    lp::LpSolution failed;
    failed.status = lp::SolveStatus::kNumericalFailure;
    return failed;
  }
  lp::SimplexSolver solver(options.simplex);
  return solver.Solve(model);
}

}  // namespace

Result<FumpResult> SolveFump(const SearchLog& log, const PrivacyParams& params,
                             const FumpOptions& options) {
  if (options.output_size == 0) {
    return Status::InvalidArgument("F-UMP requires output_size > 0");
  }
  if (!(options.min_support > 0.0) || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must lie in (0, 1]");
  }
  if (log.total_clicks() == 0) {
    return Status::InvalidArgument("input log is empty");
  }
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));

  FumpResult result;
  result.frequent_pairs = FrequentPairs(log, options.min_support);

  // Solve with precision caps first; fall back to the paper's plain
  // formulation if the caps make the fixed output size unreachable.
  lp::LpSolution lp;
  if (options.enforce_precision) {
    lp = SolveLp(log, system, result.frequent_pairs, options,
                 /*with_caps=*/true);
    result.used_precision_caps = lp.status == lp::SolveStatus::kOptimal;
  }
  if (!result.used_precision_caps) {
    lp = SolveLp(log, system, result.frequent_pairs, options,
                 /*with_caps=*/false);
  }
  if (lp.status == lp::SolveStatus::kInfeasible) {
    return Status::Infeasible(
        "F-UMP infeasible: requested output_size exceeds the maximum "
        "output size lambda for these privacy parameters");
  }
  if (lp.status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("F-UMP LP solve failed: ") +
                            lp::SolveStatusToString(lp.status));
  }

  result.support_distance_sum = lp.objective;
  result.simplex_iterations = lp.iterations;
  result.simplex_refactorizations = lp.refactorizations;
  result.x_relaxed.assign(lp.x.begin(), lp.x.begin() + log.num_pairs());

  // Round: floor, then distribute the lost mass by largest fractional
  // remainder while the DP rows keep fitting (flooring freed row slack, so
  // most increments are admissible). Caps on infrequent pairs stay honored.
  std::vector<bool> is_frequent(log.num_pairs(), false);
  for (PairId f : result.frequent_pairs) is_frequent[f] = true;
  const uint64_t lp_cap =
      InfrequentCap(options.min_support,
                    static_cast<double>(options.output_size));

  result.x.resize(log.num_pairs());
  std::vector<double> remainder(log.num_pairs());
  uint64_t floored_total = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const double value = std::max(0.0, result.x_relaxed[p]);
    const double floored = std::floor(value + 1e-7);
    result.x[p] = static_cast<uint64_t>(floored);
    remainder[p] = value - floored;
    floored_total += result.x[p];
  }

  if (floored_total < options.output_size) {
    std::vector<double> row_lhs(system.num_rows(), 0.0);
    for (size_t r = 0; r < system.num_rows(); ++r) {
      row_lhs[r] = system.RowLhs(r, std::span<const uint64_t>(result.x));
    }
    // Row membership per pair for incremental feasibility checks.
    std::vector<std::vector<std::pair<size_t, double>>> pair_rows(
        log.num_pairs());
    for (size_t r = 0; r < system.num_rows(); ++r) {
      for (const DpConstraintEntry& e : system.Row(r)) {
        pair_rows[e.pair].emplace_back(r, e.log_t);
      }
    }
    std::vector<PairId> order(log.num_pairs());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](PairId a, PairId b) {
      if (is_frequent[a] != is_frequent[b]) {
        return static_cast<bool>(is_frequent[a]);
      }
      return remainder[a] > remainder[b];
    });
    uint64_t deficit = options.output_size - floored_total;
    for (PairId p : order) {
      if (deficit == 0) break;
      if (remainder[p] <= 1e-9) continue;  // only top up rounded-down mass
      if (result.used_precision_caps && !is_frequent[p] &&
          result.x[p] + 1 > lp_cap) {
        continue;
      }
      bool fits = true;
      for (const auto& [r, weight] : pair_rows[p]) {
        if (row_lhs[r] + weight > system.budget() + 1e-12) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      for (const auto& [r, weight] : pair_rows[p]) row_lhs[r] += weight;
      ++result.x[p];
      --deficit;
    }
  }

  // Precision enforcement on the realized size: clamp any infrequent pair
  // still at/over the threshold of the realized output. Clamping shrinks
  // the realized size, so iterate to a fixpoint (total strictly decreases,
  // hence terminates).
  if (options.enforce_precision) {
    while (true) {
      const uint64_t realized = std::accumulate(
          result.x.begin(), result.x.end(), static_cast<uint64_t>(0));
      if (realized == 0) break;
      const uint64_t cap =
          InfrequentCap(options.min_support, static_cast<double>(realized));
      bool changed = false;
      for (PairId p = 0; p < log.num_pairs(); ++p) {
        if (!is_frequent[p] && result.x[p] > cap) {
          result.x[p] = cap;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  result.realized_output_size = std::accumulate(
      result.x.begin(), result.x.end(), static_cast<uint64_t>(0));
  return result;
}

}  // namespace privsan
