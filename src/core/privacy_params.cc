#include "core/privacy_params.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace privsan {

PrivacyParams PrivacyParams::FromEEpsilon(double e_epsilon, double delta) {
  return PrivacyParams{std::log(e_epsilon), delta};
}

Status PrivacyParams::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be finite and > 0");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    return Status::InvalidArgument("delta must lie in (0, 1)");
  }
  return Status::OK();
}

double PrivacyParams::Budget() const {
  return std::min(epsilon, std::log(1.0 / (1.0 - delta)));
}

bool PrivacyParams::DeltaBound() const {
  return std::log(1.0 / (1.0 - delta)) < epsilon;
}

std::string PrivacyParams::ToString() const {
  std::ostringstream os;
  os << "(epsilon=" << epsilon << " [e^eps=" << std::exp(epsilon)
     << "], delta=" << delta << ", budget=" << Budget() << ")";
  return os.str();
}

}  // namespace privsan
