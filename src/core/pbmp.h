// PBMP: the Privacy-Breach Minimizing Problem (extension).
//
// Section 7 of the paper sketches the dual of the UMPs as future work:
// instead of maximizing utility under a privacy budget, minimize the privacy
// exposure needed to reach a required utility. privsan implements the
// output-size flavor:
//
//   min  z
//   s.t. for every user log A_k: sum_{(i,j) in A_k} x_ij log t_ijk <= z,
//        sum_ij x_ij >= U,   x >= 0, z >= 0,
//
// an LP whose optimum z* is the smallest per-user exposure budget that
// still admits an output of size U. From z* one reads off the achievable
// privacy frontier: ε >= z*, or δ >= 1 − e^{−z*} when the δ condition is
// the binding one.
#ifndef PRIVSAN_CORE_PBMP_H_
#define PRIVSAN_CORE_PBMP_H_

#include <cstdint>
#include <vector>

#include "log/search_log.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {

struct PbmpOptions {
  uint64_t required_output_size = 0;  // U > 0
  lp::SimplexOptions simplex;
};

struct PbmpResult {
  // Minimum per-user exposure budget z*.
  double min_budget = 0.0;
  // Privacy frontier implied by z*.
  double min_epsilon = 0.0;   // = z*
  double min_delta = 0.0;     // = 1 − e^{−z*}
  // A count vector achieving it (relaxed; not floored — utility target U is
  // a hard constraint, flooring would undercut it).
  std::vector<double> x;
};

// `log` must be preprocessed (no unique pairs).
Result<PbmpResult> SolvePbmp(const SearchLog& log, const PbmpOptions& options);

}  // namespace privsan

#endif  // PRIVSAN_CORE_PBMP_H_
