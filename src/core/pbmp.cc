#include "core/pbmp.h"

#include <cmath>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "lp/model.h"

namespace privsan {

Result<PbmpResult> SolvePbmp(const SearchLog& log,
                             const PbmpOptions& options) {
  if (options.required_output_size == 0) {
    return Status::InvalidArgument("required_output_size must be > 0");
  }
  // Build the t_ijk rows with placeholder privacy parameters: only the
  // coefficients matter here, the budget becomes the variable z.
  PRIVSAN_ASSIGN_OR_RETURN(
      DpConstraintSystem system,
      DpConstraintSystem::Build(log, PrivacyParams{1.0, 0.5}));

  lp::LpModel model(lp::ObjectiveSense::kMinimize);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    model.AddVariable(0.0, lp::kInfinity, 0.0);
  }
  const int z = model.AddVariable(0.0, lp::kInfinity, 1.0, "z");

  for (size_t r = 0; r < system.num_rows(); ++r) {
    // sum x log t − z <= 0.
    const int row = model.AddConstraint(lp::ConstraintSense::kLessEqual, 0.0);
    for (const DpConstraintEntry& e : system.Row(r)) {
      model.AddCoefficient(row, static_cast<int>(e.pair), e.log_t);
    }
    model.AddCoefficient(row, z, -1.0);
  }
  {
    const int row = model.AddConstraint(
        lp::ConstraintSense::kGreaterEqual,
        static_cast<double>(options.required_output_size), "utility_floor");
    for (PairId p = 0; p < log.num_pairs(); ++p) {
      model.AddCoefficient(row, static_cast<int>(p), 1.0);
    }
  }
  PRIVSAN_RETURN_IF_ERROR(model.Validate());

  lp::SimplexSolver solver(options.simplex);
  lp::LpSolution lp = solver.Solve(model);
  if (lp.status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("PBMP LP solve failed: ") +
                            lp::SolveStatusToString(lp.status));
  }

  PbmpResult result;
  result.min_budget = lp.objective;
  result.min_epsilon = lp.objective;
  result.min_delta = -std::expm1(-lp.objective);
  result.x.assign(lp.x.begin(), lp.x.begin() + log.num_pairs());
  return result;
}

}  // namespace privsan
