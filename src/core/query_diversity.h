// Query-level diversity maximization — the variant Section 5.3 mentions in
// passing: "Indeed, we can also model search query diversity maximizing
// problem in a similar way."
//
// Instead of maximizing distinct query-url pairs, maximize the number of
// distinct *queries* with at least one retained pair. A query is covered by
// retaining any one of its pairs, so the greedy solver admits, per query in
// increasing cost order, that query's cheapest pair first, then refills
// with the remaining pairs (which adds pair diversity but no new queries).
#ifndef PRIVSAN_CORE_QUERY_DIVERSITY_H_
#define PRIVSAN_CORE_QUERY_DIVERSITY_H_

#include <cstdint>
#include <vector>

#include "core/privacy_params.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

struct QueryDiversityResult {
  std::vector<uint64_t> x;  // 0/1 per PairId (one multinomial trial each)
  int64_t queries_retained = 0;
  int64_t pairs_retained = 0;
  double query_diversity_ratio = 0.0;  // retained / distinct input queries
};

// `log` must be preprocessed (no unique pairs).
Result<QueryDiversityResult> SolveQueryDiversity(const SearchLog& log,
                                                 const PrivacyParams& params);

// Counts distinct queries covered by a 0/1 pair selection.
int64_t CountCoveredQueries(const SearchLog& log,
                            const std::vector<uint64_t>& x);

}  // namespace privsan

#endif  // PRIVSAN_CORE_QUERY_DIVERSITY_H_
