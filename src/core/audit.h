// Privacy audit: verifies Theorem 1 on a concrete solution.
//
// Given the (preprocessed) input D and output counts x, the audit computes
// for every user log A_k the exact quantities of Section 4.1:
//
//   Equation 2:  Pr[R(D) in Ω1]  = 1 − prod ((c_ij − c_ijk)/c_ij)^x_ij
//                                  (probability that s_k leaks into O)
//   Equation 3:  max output ratio = prod (c_ij/(c_ij − c_ijk))^x_ij
//
// and checks them against δ and e^ε. These are computed directly from the
// counts — not via the merged linear budget — so the audit independently
// cross-checks the constraint formulation (their logs coincide, which the
// property tests assert).
#ifndef PRIVSAN_CORE_AUDIT_H_
#define PRIVSAN_CORE_AUDIT_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/privacy_params.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

struct AuditReport {
  bool satisfies_privacy = false;  // all three Theorem-1 conditions hold

  bool condition1_ok = false;  // no positive count on a unique pair
  bool condition2_ok = false;  // every user's ratio <= e^eps
  bool condition3_ok = false;  // every user's leak probability <= delta

  // Worst-case (over users) Equation-3 ratio and Equation-2 probability.
  double max_ratio = 1.0;
  double max_leak_probability = 0.0;
  // The user attaining the worst ratio (== worst leak probability; both are
  // monotone in the same exponent sum). Only meaningful if there are users.
  UserId worst_user = 0;

  // For cross-checking against DpConstraintSystem: max_k sum x log t.
  double max_row_lhs = 0.0;
  double budget = 0.0;

  std::string ToString() const;
};

// `x` is indexed by PairId of `log`. Works on any log (preprocessed or
// not): unique pairs with positive counts fail Condition 1 in the report
// rather than erroring.
Result<AuditReport> AuditSolution(const SearchLog& log,
                                  const PrivacyParams& params,
                                  std::span<const uint64_t> x);

}  // namespace privsan

#endif  // PRIVSAN_CORE_AUDIT_H_
