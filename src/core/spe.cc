#include "core/spe.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace privsan {

Result<lp::BipSolution> SolveSpe(const lp::BipProblem& problem) {
  PRIVSAN_RETURN_IF_ERROR(problem.Validate());

  const int n = problem.num_vars();
  const int m = problem.num_rows;

  lp::BipSolution solution;
  solution.y.assign(n, 1);
  solution.selected = n;

  // Row loads with everything selected.
  std::vector<double> load(m, 0.0);
  for (int j = 0; j < n; ++j) {
    for (const lp::SparseEntry& e : problem.columns[j]) {
      load[e.index] += e.value;
    }
  }
  int violated = 0;
  for (int r = 0; r < m; ++r) {
    if (load[r] > problem.rhs[r] + 1e-12) ++violated;
  }

  // Max-heap over (t_ijk, variable, row) with lazy invalidation: an entry is
  // stale if its variable was already eliminated or its row is satisfied.
  struct HeapEntry {
    double weight;
    int var;
    int row;
    bool operator<(const HeapEntry& other) const {
      if (weight != other.weight) return weight < other.weight;
      return var > other.var;  // deterministic tie-break: smaller var first
    }
  };
  std::priority_queue<HeapEntry> heap;
  for (int j = 0; j < n; ++j) {
    for (const lp::SparseEntry& e : problem.columns[j]) {
      heap.push(HeapEntry{e.value, j, e.index});
    }
  }

  while (violated > 0) {
    if (heap.empty()) {
      // Cannot happen for a valid problem (eliminating everything zeroes
      // every load), but guard against degenerate inputs.
      return Status::Internal("SPE heap exhausted with violated rows left");
    }
    HeapEntry top = heap.top();
    heap.pop();
    if (!solution.y[top.var]) continue;                          // stale: gone
    if (load[top.row] <= problem.rhs[top.row] + 1e-12) continue;  // stale: ok

    // Eliminate the pair: remove its weight from every row it touches.
    solution.y[top.var] = 0;
    --solution.selected;
    for (const lp::SparseEntry& e : problem.columns[top.var]) {
      const bool was_violated = load[e.index] > problem.rhs[e.index] + 1e-12;
      load[e.index] -= e.value;
      if (was_violated && load[e.index] <= problem.rhs[e.index] + 1e-12) {
        --violated;
      }
    }
  }

  // Refill pass: eliminations later in the loop can free room for pairs
  // eliminated earlier, so the destructive phase alone is not maximal.
  // Re-admit eliminated pairs (least sensitive first — ascending maximum
  // t_ijk, the reverse of the elimination order) while every row still
  // fits. The paper's reported SPE quality (Table 7, at or above exact
  // solvers under resource limits) is only reachable with maximal
  // solutions, so the refill is part of privsan's SPE.
  std::vector<std::pair<double, int>> eliminated;
  for (int j = 0; j < n; ++j) {
    if (solution.y[j]) continue;
    double max_weight = 0.0;
    for (const lp::SparseEntry& e : problem.columns[j]) {
      max_weight = std::max(max_weight, e.value);
    }
    eliminated.emplace_back(max_weight, j);
  }
  std::sort(eliminated.begin(), eliminated.end());
  for (const auto& [max_weight, j] : eliminated) {
    bool fits = true;
    for (const lp::SparseEntry& e : problem.columns[j]) {
      if (load[e.index] + e.value > problem.rhs[e.index] + 1e-12) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    for (const lp::SparseEntry& e : problem.columns[j]) {
      load[e.index] += e.value;
    }
    solution.y[j] = 1;
    ++solution.selected;
  }
  return solution;
}

}  // namespace privsan
