#include "core/query_diversity.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "core/constraints.h"
#include "core/dump.h"
#include "core/spe.h"

namespace privsan {

int64_t CountCoveredQueries(const SearchLog& log,
                            const std::vector<uint64_t>& x) {
  std::unordered_set<QueryId> covered;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (x[p] > 0) covered.insert(log.pair_query(p));
  }
  return static_cast<int64_t>(covered.size());
}

Result<QueryDiversityResult> SolveQueryDiversity(const SearchLog& log,
                                                 const PrivacyParams& params) {
  PRIVSAN_ASSIGN_OR_RETURN(lp::BipProblem problem,
                           BuildDumpBip(log, params));

  // Per-pair cost: its worst row coefficient (the binding weight when the
  // pair is retained alone).
  std::vector<double> cost(log.num_pairs(), 0.0);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    for (const lp::SparseEntry& e : problem.columns[p]) {
      cost[p] = std::max(cost[p], e.value);
    }
  }

  // Group pairs by query; each query's representative is its cheapest pair.
  struct QueryGroup {
    QueryId query;
    PairId representative;
    double representative_cost;
  };
  std::vector<int> representative(log.num_queries(), -1);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const QueryId q = log.pair_query(p);
    if (representative[q] < 0 ||
        cost[p] < cost[representative[q]]) {
      representative[q] = static_cast<int>(p);
    }
  }
  std::vector<QueryGroup> groups;
  for (QueryId q = 0; q < log.num_queries(); ++q) {
    if (representative[q] >= 0) {
      groups.push_back(QueryGroup{q, static_cast<PairId>(representative[q]),
                                  cost[representative[q]]});
    }
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [](const QueryGroup& a, const QueryGroup& b) {
                     return a.representative_cost < b.representative_cost;
                   });

  QueryDiversityResult result;
  result.x.assign(log.num_pairs(), 0);
  std::vector<double> load(problem.num_rows, 0.0);
  auto admit = [&](PairId p) {
    for (const lp::SparseEntry& e : problem.columns[p]) {
      if (load[e.index] + e.value > problem.rhs[e.index] + 1e-12) {
        return false;
      }
    }
    for (const lp::SparseEntry& e : problem.columns[p]) {
      load[e.index] += e.value;
    }
    result.x[p] = 1;
    ++result.pairs_retained;
    return true;
  };

  // Pass 1: one pair per query, cheapest queries first — maximizes query
  // coverage under the budget.
  for (const QueryGroup& group : groups) {
    if (admit(group.representative)) ++result.queries_retained;
  }
  // Pass 2: refill with remaining pairs (adds pair diversity, no new
  // queries can be missed — their representative was the cheapest option).
  std::vector<PairId> order(log.num_pairs());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](PairId a, PairId b) { return cost[a] < cost[b]; });
  for (PairId p : order) {
    if (!result.x[p]) admit(p);
  }

  result.queries_retained = CountCoveredQueries(log, result.x);

  // Portfolio step: the pair-diversity heuristic occasionally covers more
  // queries incidentally (different elimination geometry); keep whichever
  // selection covers more.
  PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution spe, SolveSpe(problem));
  std::vector<uint64_t> spe_x(spe.y.begin(), spe.y.end());
  const int64_t spe_queries = CountCoveredQueries(log, spe_x);
  if (spe_queries > result.queries_retained) {
    result.x = std::move(spe_x);
    result.queries_retained = spe_queries;
    result.pairs_retained = spe.selected;
  }

  result.query_diversity_ratio =
      log.num_queries() == 0
          ? 0.0
          : static_cast<double>(result.queries_retained) /
                static_cast<double>(log.num_queries());
  return result;
}

}  // namespace privsan
