// O-UMP: the Output-size Utility-Maximizing Problem (Section 5.1).
//
//   max  sum_ij x_ij
//   s.t. for every user log A_k:  sum_{(i,j) in A_k} x_ij log t_ijk <= B
//        x_ij >= 0 integer,       B = min{ε, log(1/(1−δ))}
//
// Solved by linear relaxation with the privsan simplex, then floored
// (Section 5.1: ⌊x*⌋ still satisfies Mx <= b because M, b >= 0). The optimal
// value λ = sum ⌊x*_ij⌋ is the maximum output size used throughout the
// paper's evaluation (Table 4) and as the |O| cap for F-UMP.
#ifndef PRIVSAN_CORE_OUMP_H_
#define PRIVSAN_CORE_OUMP_H_

#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "core/ump.h"
#include "log/search_log.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {

struct OumpOptions {
  lp::SimplexOptions simplex;
  // Optional ablation (not in the paper): additionally require
  // x_ij <= c_ij, i.e. never emit a pair more often than the input saw it.
  bool cap_counts_at_input = false;
};

struct OumpResult {
  // Floored optimal counts per PairId of the input log.
  std::vector<uint64_t> x;
  // The LP-relaxed optimum.
  std::vector<double> x_relaxed;
  // λ = sum of floored counts (the maximum output size).
  uint64_t lambda = 0;
  // LP objective (sum of relaxed counts).
  double lp_objective = 0.0;
  int64_t simplex_iterations = 0;
  int simplex_refactorizations = 0;
};

// `log` must be preprocessed (no unique pairs). Fails with
// FailedPrecondition otherwise.
//
// DEPRECATED: one-shot compatibility wrapper over MakeOumpProblem
// (core/ump.h). It rebuilds the DP rows and the LP model on every call;
// use UmpProblem / SanitizerSession (core/session.h) for repeated solves.
PRIVSAN_DEPRECATED("use MakeOumpProblem / SanitizerSession (core/ump.h)")
Result<OumpResult> SolveOump(const SearchLog& log, const PrivacyParams& params,
                             const OumpOptions& options = {});

// Grid acceleration: the O-UMP feasible region {Wx <= B·1, x >= 0} scales
// linearly in the budget B, so the relaxed optimum needs to be computed only
// once (at B = 1) per dataset; every (ε, δ) cell then follows by scaling the
// relaxed point and re-rounding. Used by the Table 4 bench. Not valid with
// cap_counts_at_input (caps break the scaling).
struct OumpScalingBase {
  std::vector<double> x_unit;      // relaxed optimum at unit budget
  double lp_objective_unit = 0.0;  // relaxed λ at unit budget
  int64_t simplex_iterations = 0;
};

Result<OumpScalingBase> SolveOumpUnitBudget(
    const SearchLog& log, const lp::SimplexOptions& simplex = {});

// Rounds the scaled relaxed optimum for `params`; equivalent to
// SolveOump(log, params) without re-running the simplex.
Result<OumpResult> RoundScaledOump(const SearchLog& log,
                                   const PrivacyParams& params,
                                   const OumpScalingBase& base);

}  // namespace privsan

#endif  // PRIVSAN_CORE_OUMP_H_
