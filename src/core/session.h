// SanitizerSession: the stateful, incremental face of the sanitizer.
//
// A session owns everything that is reusable across solves of the same
// (growing) search log:
//
//   * the accumulated raw input and its Condition-1 preprocessed form;
//   * the shared DP constraint rows (built once per preprocessed log — the
//     coefficients never depend on (ε, δ));
//   * one cached UmpProblem per objective (LP/BIP models built once, only
//     right-hand sides rebound per query);
//   * the last optimal basis per objective, chained as a warm-start hint
//     into the next solve.
//
// On top of plain Solve() it offers:
//
//   * SweepBudgets(grid): solves a whole (ε, δ[, |O|]) grid, dual-warm-
//     starting every cell from the previous cell's basis — only the rhs
//     changes between cells, which is exactly the case the warm-start dual
//     simplex restores in a handful of pivots (Tables 4–7 of the paper are
//     such sweeps);
//   * AppendUsers(logs): appends user logs and remaps the previous optimal
//     basis onto the grown model (appended users become basic slack rows,
//     new pairs enter nonbasic at zero) so the next solve warm-starts from
//     the prior optimum instead of cold-solving — the ROADMAP's serve-path
//     primitive. The *solve* is incremental; preprocessing and the DP rows
//     are currently rebuilt over the whole accumulated log per append
//     (O(log size) — patching only changed rows is a ROADMAP follow-up);
//   * Sanitize(privacy): the full Algorithm-1 pipeline (solve → optional
//     Laplace noise → multinomial sampling → Theorem-1 audit) on the
//     session's cached state.
//
// Warm starts are a pure optimization: a stale or unusable basis falls
// back to a cold solve inside the simplex, never to a different answer.
// Sessions are single-threaded; shard across sessions for parallelism.
#ifndef PRIVSAN_CORE_SESSION_H_
#define PRIVSAN_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/audit.h"
#include "core/laplace_step.h"
#include "core/ump.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

struct SessionOptions {
  // Objective used by Sanitize(); Solve()/SweepBudgets() name theirs.
  UtilityObjective objective = UtilityObjective::kOutputSize;
  uint64_t seed = 42;

  OumpSpec oump;
  FumpSpec fump;
  DumpSpec dump;
  lp::SimplexOptions simplex;

  // F-UMP output size used by Sanitize(); 0 = use λ (the O-UMP optimum,
  // solved through the session's cached O-UMP problem).
  uint64_t output_size = 0;

  // Optional end-to-end DP noise on the computed counts (§4.2), applied by
  // Sanitize().
  std::optional<LaplaceStepOptions> laplace;
};

// Result of the full pipeline (formerly declared in core/sanitizer.h).
struct SanitizeReport {
  SearchLog output;
  // The preprocessed input the UMP ran on; optimal_counts is indexed by its
  // PairIds.
  SearchLog preprocessed_input;
  PreprocessStats preprocess_stats;
  std::vector<uint64_t> optimal_counts;
  uint64_t output_size = 0;  // sum of optimal_counts
  AuditReport audit;
  double solve_seconds = 0.0;
};

struct SweepOptions {
  // Chain each cell's solve from the previous cell's optimal basis. Off =
  // the per-cell cold baseline (what the one-shot wrappers do).
  bool warm_start = true;
  // F-UMP only: structural min-support override for this sweep. Changing it
  // rebuilds the cached F-UMP problem (the frequent set shapes the model).
  std::optional<double> min_support;
};

struct SweepResult {
  std::vector<UmpSolution> cells;  // one per grid entry, in order
  // Aggregates across all cells.
  int64_t total_simplex_iterations = 0;
  int64_t total_dual_iterations = 0;
  // Main/root-LP iterations only — the cleanest cross-cell warm-start
  // signal (branch & bound tree totals vary with the search order).
  int64_t total_root_iterations = 0;
  int64_t warm_solves = 0;  // cells whose main/root LP ran from a warm basis
  double wall_seconds = 0.0;
};

class SanitizerSession {
 public:
  // Preprocesses `input` (Condition 1) and builds the shared DP rows. An
  // input with no shared pairs is allowed — a session may start empty and
  // be populated through AppendUsers; Solve/Sanitize fail until then.
  static Result<SanitizerSession> Create(const SearchLog& input,
                                         SessionOptions options = {});

  SanitizerSession(SanitizerSession&&) noexcept;
  SanitizerSession& operator=(SanitizerSession&&) noexcept;
  ~SanitizerSession();

  const SessionOptions& options() const;
  const SearchLog& raw_log() const;
  // The preprocessed log all solutions are indexed against.
  const SearchLog& log() const;
  const PreprocessStats& preprocess_stats() const;

  // Solves `objective` at `query`, warm-starting from the last optimal
  // basis of the same objective when one exists. query.output_size == 0
  // for F-UMP resolves to λ via the cached O-UMP problem.
  Result<UmpSolution> Solve(UtilityObjective objective, const UmpQuery& query);

  // Solves every grid cell in order, chaining warm starts across cells
  // (sweep.warm_start). Objective values are identical to per-cell cold
  // solves — warm starts only change the path, not the optimum.
  Result<SweepResult> SweepBudgets(UtilityObjective objective,
                                   const std::vector<UmpQuery>& grid,
                                   const SweepOptions& sweep = {});

  // Appends the user logs of `more` to the session's raw input (same-name
  // users merge), re-preprocesses, rebuilds the DP rows, and remaps the
  // stored optimal bases onto the grown problem so the next Solve warm-
  // starts from the prior optimum. The result of a post-append solve is
  // identical to a from-scratch solve on the concatenated log.
  Status AppendUsers(const SearchLog& more);

  // Algorithm 1 end to end at `privacy`, using options().objective: solve
  // (warm-started) → optional Laplace noise → multinomial sampling →
  // Theorem-1 audit.
  Result<SanitizeReport> Sanitize(const PrivacyParams& privacy);

 private:
  struct State;
  SanitizerSession(std::unique_ptr<State> state);

  Result<UmpSolution> SolveInternal(UtilityObjective objective,
                                    const UmpQuery& query, bool warm);
  Status RebuildFromRaw(bool remap_bases);

  std::unique_ptr<State> state_;
};

}  // namespace privsan

#endif  // PRIVSAN_CORE_SESSION_H_
