// SanitizerSession: the stateful, incremental face of the sanitizer.
//
// A session owns everything that is reusable across solves of the same
// (growing) search log:
//
//   * the accumulated raw input and its Condition-1 preprocessed form;
//   * the shared DP constraint rows (built once per preprocessed log — the
//     coefficients never depend on (ε, δ));
//   * one cached UmpProblem per objective (LP/BIP models built once, only
//     right-hand sides rebound per query);
//   * the last optimal basis per objective, chained as a warm-start hint
//     into the next solve.
//
// On top of plain Solve() it offers:
//
//   * SweepBudgets(grid): solves a whole (ε, δ[, |O|]) grid, dual-warm-
//     starting every cell from the previous cell's basis — only the rhs
//     changes between cells, which is exactly the case the warm-start dual
//     simplex restores in a handful of pivots (Tables 4–7 of the paper are
//     such sweeps);
//   * AppendUsers(logs): appends user logs and remaps the previous optimal
//     basis onto the grown model (appended users become basic slack rows,
//     new pairs enter nonbasic at zero) so the next solve warm-starts from
//     the prior optimum instead of cold-solving — the serve-path primitive.
//     The DP rows are patched incrementally (DpConstraintSystem::PatchRows):
//     only rows of users holding a pair whose click total moved are
//     recomputed, the rest are copied with remapped PairIds;
//   * Sanitize(privacy): the full Algorithm-1 pipeline (solve → optional
//     Laplace noise → multinomial sampling → Theorem-1 audit) on the
//     session's cached state.
//
// Warm starts are a pure optimization: a stale or unusable basis falls
// back to a cold solve inside the simplex, never to a different answer.
//
// Thread-compatibility contract: a session mutates cached problems and the
// shared DP system in place, so all methods — including the const accessors
// while a solve is running — are single-threaded. Debug builds assert
// overlapping calls. For cross-thread use, serialize access per session or
// go through serve::SanitizerService (the only concurrency-safe entry
// point); parallelism *within* one session's preprocessing comes from
// SessionOptions::pool instead.
#ifndef PRIVSAN_CORE_SESSION_H_
#define PRIVSAN_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/audit.h"
#include "core/laplace_step.h"
#include "core/ump.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

namespace serve {
class ThreadPool;
}  // namespace serve

struct SessionOptions {
  // Objective used by Sanitize(); Solve()/SweepBudgets() name theirs.
  UtilityObjective objective = UtilityObjective::kOutputSize;
  uint64_t seed = 42;

  OumpSpec oump;
  FumpSpec fump;
  DumpSpec dump;
  lp::SimplexOptions simplex;

  // F-UMP output size used by Sanitize(); 0 = use λ (the O-UMP optimum,
  // solved through the session's cached O-UMP problem).
  uint64_t output_size = 0;

  // Optional end-to-end DP noise on the computed counts (§4.2), applied by
  // Sanitize().
  std::optional<LaplaceStepOptions> laplace;

  // Shards Condition-1 preprocessing and DP-row construction (Create and
  // AppendUsers) across this pool; nullptr = serial. Not owned — must
  // outlive the session. Sharding never changes results, only wall time.
  serve::ThreadPool* pool = nullptr;
};

// What the last AppendUsers actually did — the serve path's hot-spot
// telemetry (rows_copied should dominate once a log is large and appends
// are small).
struct AppendStats {
  size_t appended_users = 0;   // raw users added (pre-merge duplicates)
  size_t rows_copied = 0;      // DP rows reused from the previous system
  size_t rows_rebuilt = 0;     // DP rows recomputed (changed or new users)
  double seconds = 0.0;
};

// What the last RemoveUsers actually did — the deletion mirror of
// AppendStats (stream/window.h drives removals continuously, so the serve
// layer surfaces these per tenant).
struct RemoveStats {
  size_t removed_users = 0;    // named users actually present and removed
  size_t rows_copied = 0;      // DP rows reused from the previous system
  size_t rows_rebuilt = 0;     // DP rows recomputed (a removed user's pairs)
  double seconds = 0.0;
};

// A session's reusable state, detached for snapshot/restore
// (serve/snapshot.h): the raw and preprocessed logs, the DP rows and the
// last optimal basis per objective. Restoring skips preprocessing and row
// construction entirely and resumes warm from the stored bases.
struct SessionSnapshot {
  SearchLog raw;
  SearchLog log;  // preprocessed
  PreprocessStats stats;
  DpConstraintSystem system;  // rows only; the budget is rebound per solve
  std::vector<lp::Basis> bases;  // indexed by UtilityObjective
};

// Result of the full pipeline (formerly declared in core/sanitizer.h).
struct SanitizeReport {
  SearchLog output;
  // The preprocessed input the UMP ran on; optimal_counts is indexed by its
  // PairIds.
  SearchLog preprocessed_input;
  PreprocessStats preprocess_stats;
  std::vector<uint64_t> optimal_counts;
  uint64_t output_size = 0;  // sum of optimal_counts
  AuditReport audit;
  double solve_seconds = 0.0;
};

struct SweepOptions {
  // Chain each cell's solve from the previous cell's optimal basis. Off =
  // the per-cell cold baseline (what the one-shot wrappers do).
  bool warm_start = true;
  // F-UMP only: structural min-support override for this sweep. Changing it
  // rebuilds the cached F-UMP problem (the frequent set shapes the model).
  std::optional<double> min_support;
};

struct SweepResult {
  std::vector<UmpSolution> cells;  // one per grid entry, in order
  // Aggregates across all cells.
  int64_t total_simplex_iterations = 0;
  int64_t total_dual_iterations = 0;
  // Main/root-LP iterations only — the cleanest cross-cell warm-start
  // signal (branch & bound tree totals vary with the search order).
  int64_t total_root_iterations = 0;
  int64_t warm_solves = 0;  // cells whose main/root LP ran from a warm basis
  // Warm solves whose dual repair hit the configured pivot cap and fell
  // back cold (UmpStats::repair_aborted summed across cells).
  int64_t repair_aborted = 0;
  // Peak factorization fill and longest update run between
  // refactorizations, maxed across cells (UmpStats carries them per cell).
  size_t factor_nnz = 0;
  int max_update_run = 0;
  // Hyper-sparse kernel health summed/averaged across cells: pattern-driven
  // FTRAN/BTRAN calls, end-to-end sparse hits, and the solve-count-weighted
  // mean reach fraction (UmpStats carries the per-cell figures).
  uint64_t sparse_solves = 0;
  uint64_t sparse_ftran_hits = 0;
  double mean_reach_fraction = 0.0;
  double wall_seconds = 0.0;
};

class SanitizerSession {
 public:
  // Preprocesses `input` (Condition 1) and builds the shared DP rows. An
  // input with no shared pairs is allowed — a session may start empty and
  // be populated through AppendUsers; Solve/Sanitize fail until then.
  static Result<SanitizerSession> Create(const SearchLog& input,
                                         SessionOptions options = {});

  SanitizerSession(SanitizerSession&&) noexcept;
  SanitizerSession& operator=(SanitizerSession&&) noexcept;
  ~SanitizerSession();

  const SessionOptions& options() const;
  const SearchLog& raw_log() const;
  // The preprocessed log all solutions are indexed against.
  const SearchLog& log() const;
  const PreprocessStats& preprocess_stats() const;

  // Solves `objective` at `query`, warm-starting from the last optimal
  // basis of the same objective when one exists. query.output_size == 0
  // for F-UMP resolves to λ via the cached O-UMP problem.
  Result<UmpSolution> Solve(UtilityObjective objective, const UmpQuery& query);

  // Solves every grid cell in order, chaining warm starts across cells
  // (sweep.warm_start). Objective values are identical to per-cell cold
  // solves — warm starts only change the path, not the optimum.
  Result<SweepResult> SweepBudgets(UtilityObjective objective,
                                   const std::vector<UmpQuery>& grid,
                                   const SweepOptions& sweep = {});

  // Appends the user logs of `more` to the session's raw input (same-name
  // users merge), re-preprocesses, patches the DP rows incrementally (only
  // rows whose users' pairs changed are recomputed), and remaps the stored
  // optimal bases onto the grown problem so the next Solve warm-starts from
  // the prior optimum. The result of a post-append solve is identical to a
  // from-scratch solve on the concatenated log.
  Status AppendUsers(const SearchLog& more);

  // What the most recent AppendUsers did; zeros before the first append.
  const AppendStats& last_append_stats() const;

  // Removes the named users from the session's raw input — the inverse of
  // AppendUsers. The raw log is shrunk, re-preprocessed (a pair can turn
  // unique once its other holders leave), the DP rows are patched
  // incrementally (rows of users holding no pair whose total moved are
  // copied verbatim — bit-identical to a full rebuild on the shrunk log),
  // and the stored optimal bases are remapped *down* onto the shrunk model
  // so the next Solve resumes warm. Names not present are ignored
  // (deletion is idempotent); removing every user leaves a valid empty
  // session that Solve rejects until users are appended again.
  Status RemoveUsers(const std::vector<std::string>& user_names);

  // What the most recent RemoveUsers did; zeros before the first removal.
  const RemoveStats& last_remove_stats() const;

  // Rebuilds the cached solver models that the last AppendUsers
  // invalidated (only objectives that had a built model before the
  // append). Model construction depends on the rows alone — never on the
  // query — so a flusher can run it off the query path: the next Solve
  // then only rebinds the budget and dual-repairs the remapped basis
  // instead of paying the model build. Purely an optimization; Solve
  // builds lazily either way.
  Status PrewarmProblems();

  // Estimated resident heap footprint of the session: the raw and
  // preprocessed logs, the DP rows, the stored bases, plus one DP-system's
  // worth per cached solver model (the LP constraint matrix mirrors the
  // rows and dominates the model's memory). The log/system part is cached
  // at rebuild time, so this is O(#objectives) per call — the serve layer
  // reads it after every state change to enforce its global memory budget.
  size_t ResidentBytes() const;

  // Algorithm 1 end to end at `privacy`, using options().objective: solve
  // (warm-started) → optional Laplace noise → multinomial sampling →
  // Theorem-1 audit.
  Result<SanitizeReport> Sanitize(const PrivacyParams& privacy);

  // Copies the reusable state out for snapshot/restore (serve/snapshot.h).
  SessionSnapshot Snapshot() const;

  // Rebuilds a session from snapshot state without re-preprocessing or
  // re-deriving the DP rows. Stored bases whose shape does not match the
  // models implied by (log, options) are dropped — the next solve then runs
  // cold, never wrong. `options` is the caller's (snapshots store data, not
  // configuration).
  static Result<SanitizerSession> FromSnapshot(SessionSnapshot snapshot,
                                               SessionOptions options = {});

 private:
  struct State;
  SanitizerSession(std::unique_ptr<State> state);

  Result<UmpSolution> SolveInternal(UtilityObjective objective,
                                    const UmpQuery& query, bool warm);
  // Builds the objective's UmpProblem if not cached.
  Status EnsureProblem(UtilityObjective objective);
  Status RebuildFromRaw(bool remap_bases);

  std::unique_ptr<State> state_;
};

}  // namespace privsan

#endif  // PRIVSAN_CORE_SESSION_H_
