#include "core/sanitizer.h"

#include <utility>

namespace privsan {

SessionOptions SanitizerConfig::ToSessionOptions() const {
  SessionOptions options;
  options.objective = objective;
  options.seed = seed;
  options.fump.min_support = min_support;
  options.output_size = output_size;
  options.dump.solver = dump_solver;
  options.dump.bnb = bnb;
  options.simplex = simplex;
  options.laplace = laplace;
  return options;
}

Result<SanitizeReport> Sanitizer::Sanitize(const SearchLog& input) const {
  PRIVSAN_RETURN_IF_ERROR(config_.privacy.Validate());
  PRIVSAN_ASSIGN_OR_RETURN(
      SanitizerSession session,
      SanitizerSession::Create(input, config_.ToSessionOptions()));
  return session.Sanitize(config_.privacy);
}

}  // namespace privsan
