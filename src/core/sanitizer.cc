#include "core/sanitizer.h"

#include <algorithm>
#include <numeric>

#include "core/sampler.h"
#include "util/timer.h"

namespace privsan {

const char* UtilityObjectiveToString(UtilityObjective objective) {
  switch (objective) {
    case UtilityObjective::kOutputSize:
      return "O-UMP";
    case UtilityObjective::kFrequentPairs:
      return "F-UMP";
    case UtilityObjective::kDiversity:
      return "D-UMP";
  }
  return "?";
}

Result<SanitizeReport> Sanitizer::Sanitize(const SearchLog& input) const {
  PRIVSAN_RETURN_IF_ERROR(config_.privacy.Validate());
  WallTimer timer;

  SanitizeReport report;

  // 1. Condition-1 preprocessing.
  PreprocessResult preprocessed = RemoveUniquePairs(input);
  report.preprocess_stats = preprocessed.stats;
  report.preprocessed_input = std::move(preprocessed.log);
  const SearchLog& log = report.preprocessed_input;
  if (log.num_pairs() == 0) {
    return Status::FailedPrecondition(
        "nothing to sanitize: every query-url pair is unique to one user");
  }

  // 2. Optimal counts for the chosen objective.
  std::vector<double> relaxed;
  switch (config_.objective) {
    case UtilityObjective::kOutputSize: {
      OumpOptions options;
      options.simplex = config_.simplex;
      PRIVSAN_ASSIGN_OR_RETURN(OumpResult r,
                               SolveOump(log, config_.privacy, options));
      report.optimal_counts = std::move(r.x);
      relaxed = std::move(r.x_relaxed);
      break;
    }
    case UtilityObjective::kFrequentPairs: {
      // F-UMP needs |O| in (0, λ]; compute λ and clamp the request so a
      // too-ambitious output size degrades gracefully instead of failing.
      OumpOptions oump_options;
      oump_options.simplex = config_.simplex;
      PRIVSAN_ASSIGN_OR_RETURN(
          OumpResult o, SolveOump(log, config_.privacy, oump_options));
      if (o.lambda == 0) {
        return Status::Infeasible(
            "privacy budget too tight: the maximum output size lambda is 0");
      }
      FumpOptions options;
      options.min_support = config_.min_support;
      options.simplex = config_.simplex;
      options.output_size = config_.output_size == 0
                                ? o.lambda
                                : std::min(config_.output_size, o.lambda);
      PRIVSAN_ASSIGN_OR_RETURN(FumpResult r,
                               SolveFump(log, config_.privacy, options));
      report.optimal_counts = std::move(r.x);
      relaxed = std::move(r.x_relaxed);
      break;
    }
    case UtilityObjective::kDiversity: {
      DumpOptions options;
      options.solver = config_.dump_solver;
      options.simplex = config_.simplex;
      options.bnb = config_.bnb;
      PRIVSAN_ASSIGN_OR_RETURN(DumpResult r,
                               SolveDump(log, config_.privacy, options));
      report.optimal_counts = std::move(r.x);
      relaxed.assign(report.optimal_counts.begin(),
                     report.optimal_counts.end());
      break;
    }
  }

  // 3. Optional end-to-end Laplace noise on the counts.
  if (config_.laplace.has_value()) {
    PRIVSAN_ASSIGN_OR_RETURN(
        LaplaceStepResult noisy,
        AddLaplaceNoise(log, config_.privacy, relaxed, *config_.laplace));
    report.optimal_counts = std::move(noisy.x);
  }

  report.output_size = std::accumulate(report.optimal_counts.begin(),
                                       report.optimal_counts.end(),
                                       static_cast<uint64_t>(0));

  // 4. Multinomial user-ID sampling.
  PRIVSAN_ASSIGN_OR_RETURN(
      report.output, SampleOutput(log, report.optimal_counts, config_.seed));

  // 5. Audit against Theorem 1.
  PRIVSAN_ASSIGN_OR_RETURN(
      report.audit,
      AuditSolution(log, config_.privacy, report.optimal_counts));
  if (!report.audit.satisfies_privacy && !config_.laplace.has_value()) {
    // Without noise the solvers guarantee feasibility; a failed audit means
    // a bug, so surface it loudly rather than returning a bad log.
    return Status::Internal("privacy audit failed on noise-free counts: " +
                            report.audit.ToString());
  }

  report.solve_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace privsan
