// The unified utility-maximizing-problem (UMP) interface.
//
// The paper frames O-UMP (§5.1), F-UMP (§5.2) and D-UMP (§5.3) as one
// family of programs over the same DP constraint matrix (Equation 4):
// only the objective differs; the feasible region {Wx <= B·1, x >= 0} is
// shared, and the coefficients of W depend only on the (preprocessed) log —
// never on (ε, δ). A UmpProblem captures that structure:
//
//   * it is bound to one preprocessed log and one shared DpConstraintSystem
//     whose rows are built once and reused by every solve;
//   * its LP / BIP model is built once and cached; a new query rebinds only
//     the right-hand sides and bounds (the privacy budget B, and for F-UMP
//     the output size |O| — the F-UMP LP here is formulated with scaled
//     deviation variables y'_f = |O|·y_f precisely so that |O| never
//     appears in a coefficient);
//   * Solve() accepts an optional WarmStartHint (the optimal basis of a
//     previous solve of the same problem) and returns the new optimal basis
//     in the solution, so budget sweeps and incremental re-solves chain
//     dual-simplex warm starts instead of cold phase-1 solves;
//   * every objective reports the same UmpStats block.
//
// SanitizerSession (core/session.h) owns the shared state and the
// basis-chaining policy; the free functions SolveOump / SolveFump /
// SolveDump (core/oump.h etc.) remain as deprecated one-shot wrappers.
#ifndef PRIVSAN_CORE_UMP_H_
#define PRIVSAN_CORE_UMP_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "log/search_log.h"
#include "lp/branch_and_bound.h"
#include "lp/simplex.h"
#include "util/concurrency_check.h"
#include "util/result.h"

// Compatibility entry points (SolveOump / SolveFump / SolveDump and the
// one-shot Sanitizer) are tagged with this macro. Builds stay quiet by
// default; define PRIVSAN_WARN_DEPRECATED to surface [[deprecated]]
// warnings while migrating to UmpProblem / SanitizerSession.
#ifdef PRIVSAN_WARN_DEPRECATED
#define PRIVSAN_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define PRIVSAN_DEPRECATED(msg)
#endif

namespace privsan {

enum class UtilityObjective {
  kOutputSize,     // O-UMP (§5.1): maximize |O|
  kFrequentPairs,  // F-UMP (§5.2): preserve frequent-pair supports
  kDiversity,      // D-UMP (§5.3): maximize distinct retained pairs
};

const char* UtilityObjectiveToString(UtilityObjective objective);

enum class DumpSolverKind {
  kSpe,             // Algorithm 2 (paper's heuristic)
  kGreedy,          // constructive greedy (lp/bip_heuristics.h)
  kLpRounding,      // LP relaxation + rounding (feaspump stand-in)
  kBranchAndBound,  // budgeted exact solver (bintprog/scip/qsopt_ex stand-in)
};

const char* DumpSolverKindToString(DumpSolverKind kind);

// Structural (model-shaping) parameters, fixed for the lifetime of one
// UmpProblem instance. Everything that can change between Solve() calls
// without invalidating a warm-start basis lives in UmpQuery instead.
struct OumpSpec {
  // Optional ablation (not in the paper): additionally require
  // x_ij <= c_ij, i.e. never emit a pair more often than the input saw it.
  bool cap_counts_at_input = false;
};

struct FumpSpec {
  // Minimum support s; a pair is frequent iff c_ij / |D| >= s. The frequent
  // set shapes the model (one deviation variable + two rows per frequent
  // pair), so s is structural.
  double min_support = 1.0 / 500;
  // Realize the paper's empirical "Precision = 1" finding structurally (see
  // core/fump.h for the full story). Falls back to the uncapped formulation
  // when the caps make the requested |O| unreachable.
  bool enforce_precision = true;
};

struct DumpSpec {
  DumpSolverKind solver = DumpSolverKind::kSpe;
  lp::BnbOptions bnb;  // used by kBranchAndBound
  // Integer presolve: a DP entry w_j = log t_ijk with w_j > B makes
  // y_j = 1 infeasible on its own, so the *integer* y_j is fixed to 0
  // before branch & bound even though the LP relaxation cannot see it.
  bool integer_presolve = true;
};

// Per-solve parameters. Only right-hand sides and variable bounds of the
// cached model depend on a query, so any previous basis of the same
// UmpProblem stays a valid warm-start hint across queries.
struct UmpQuery {
  PrivacyParams privacy;
  // F-UMP only: the fixed output size |O| in (0, λ]. Must be > 0 there
  // (SanitizerSession resolves 0 to λ by solving its cached O-UMP first).
  uint64_t output_size = 0;
  // D-UMP only: overrides DumpSpec::solver for this query.
  std::optional<DumpSolverKind> solver;
};

// A warm-start hint: the optimal basis of a previous Solve() of the same
// UmpProblem instance (or of a structurally identical one — same log, same
// spec). Stale or singular hints cost a fallback cold solve, never a wrong
// answer.
struct WarmStartHint {
  lp::Basis basis;
  bool empty() const { return basis.empty(); }
};

// Uniform solver effort block, comparable across objectives.
struct UmpStats {
  int64_t simplex_iterations = 0;    // primal + dual pivots, all LP solves
  int64_t dual_iterations = 0;       // dual pivots (warm-start restores)
  int refactorizations = 0;
  // Singular refactorizations repaired in place (dependent columns swapped
  // for row slacks) instead of failing over to a cold solve.
  int basis_repairs = 0;
  // Warm solves whose dual repair exceeded the configured pivot cap
  // (SimplexOptions::warm_repair_pivot_cap) and fell back to a cold solve
  // — the serve path's "this append was too large to repair" signal.
  int64_t repair_aborted = 0;
  int64_t nodes_explored = 0;        // branch & bound only
  int64_t warm_solves = 0;           // LP solves that ran from a warm basis
  bool warm_started = false;         // the main/root LP ran from the hint
  // Iterations of the main LP alone (for D-UMP branch & bound: the root
  // relaxation) — the part a cross-cell WarmStartHint shrinks directly.
  int64_t root_iterations = 0;
  int integer_fixed = 0;             // D-UMP presolve: y_j fixed to 0
  // Peak basis-factorization nonzeros any FTRAN/BTRAN traversed (factors +
  // update file) — the fill the simplex kernel's work is proportional to.
  size_t factor_nnz = 0;
  // Longest run of basis updates between refactorizations across all LP
  // solves — how far apart the Forrest–Tomlin scheme pushes them.
  int max_update_run = 0;
  // Hyper-sparse kernel health across all LP solves: pattern-driven
  // FTRAN/BTRAN calls, how many stayed on the Gilbert–Peierls kernel end
  // to end, and the mean fraction of rows a solve reached (weighted by
  // solve count; 0.0 when the sparse path never ran).
  uint64_t sparse_solves = 0;
  uint64_t sparse_ftran_hits = 0;
  double mean_reach_fraction = 0.0;
  double wall_seconds = 0.0;
};

struct UmpSolution {
  UtilityObjective objective = UtilityObjective::kOutputSize;
  // Rounded optimal counts per PairId, feasible for the DP rows.
  std::vector<uint64_t> x;
  // The LP-relaxed optimum (for D-UMP: the 0/1 counts themselves).
  std::vector<double> x_relaxed;
  // The objective in the problem's own units: relaxed λ (O-UMP), minimal
  // support-distance sum (F-UMP), retained pairs (D-UMP).
  double objective_value = 0.0;
  // sum of x — λ for O-UMP, the realized output size for F-UMP, the number
  // of retained pairs for D-UMP.
  uint64_t output_size = 0;
  // Optimal basis for warm-starting the next solve (empty for the LP-free
  // D-UMP heuristics).
  lp::Basis basis;
  UmpStats stats;

  // Objective-specific extras.
  std::vector<PairId> frequent_pairs;  // F-UMP: the input's frequent set S0
  bool used_precision_caps = false;    // F-UMP
  bool proven_optimal = false;         // D-UMP branch & bound
};

// A utility-maximizing problem bound to one preprocessed log. Instances are
// created by the factories below; `log` and `system` must outlive the
// problem. The shared `system`'s budget is rebound on every Solve, so one
// DpConstraintSystem can back several problems (as SanitizerSession does).
//
// Thread-compatibility contract: a UmpProblem mutates its cached model (and
// the shared system's budget) in place, so concurrent Solve calls on one
// instance — or on two instances sharing a DpConstraintSystem — are data
// races. Serialize access (debug builds assert overlapping calls), or go
// through serve::SanitizerService, the only concurrency-safe entry point.
class UmpProblem {
 public:
  virtual ~UmpProblem() = default;

  virtual UtilityObjective objective() const = 0;
  virtual size_t num_pairs() const = 0;

  // Solves at the query's privacy budget. `hint` (optional) warm-starts
  // from a previous solution's basis.
  Result<UmpSolution> Solve(const UmpQuery& query,
                            const WarmStartHint* hint) {
    internal::NonConcurrentScope scope(&checker_);
    return DoSolve(query, hint);
  }
  Result<UmpSolution> Solve(const UmpQuery& query) {
    return Solve(query, nullptr);
  }

 protected:
  virtual Result<UmpSolution> DoSolve(const UmpQuery& query,
                                      const WarmStartHint* hint) = 0;

 private:
  internal::NonConcurrentChecker checker_;
};

// Factories. `system` must hold the rows of `log` (DpConstraintSystem::
// BuildRows); its budget is rebound per query.
Result<std::unique_ptr<UmpProblem>> MakeOumpProblem(
    const SearchLog& log, DpConstraintSystem* system, OumpSpec spec = {},
    lp::SimplexOptions simplex = {});

Result<std::unique_ptr<UmpProblem>> MakeFumpProblem(
    const SearchLog& log, DpConstraintSystem* system, FumpSpec spec = {},
    lp::SimplexOptions simplex = {});

Result<std::unique_ptr<UmpProblem>> MakeDumpProblem(
    const SearchLog& log, DpConstraintSystem* system, DumpSpec spec = {},
    lp::SimplexOptions simplex = {});

}  // namespace privsan

#endif  // PRIVSAN_CORE_UMP_H_
