#include "core/ump.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/dump.h"
#include "core/fump.h"
#include "core/rounding.h"
#include "core/spe.h"
#include "lp/bip_heuristics.h"
#include "lp/model.h"
#include "util/timer.h"

namespace privsan {

const char* UtilityObjectiveToString(UtilityObjective objective) {
  switch (objective) {
    case UtilityObjective::kOutputSize:
      return "O-UMP";
    case UtilityObjective::kFrequentPairs:
      return "F-UMP";
    case UtilityObjective::kDiversity:
      return "D-UMP";
  }
  return "?";
}

const char* DumpSolverKindToString(DumpSolverKind kind) {
  switch (kind) {
    case DumpSolverKind::kSpe:
      return "SPE";
    case DumpSolverKind::kGreedy:
      return "Greedy";
    case DumpSolverKind::kLpRounding:
      return "LP-round";
    case DumpSolverKind::kBranchAndBound:
      return "B&B";
  }
  return "?";
}

namespace {

void FillLpStats(const lp::LpSolution& lp, UmpStats* stats) {
  stats->simplex_iterations += lp.iterations;
  stats->dual_iterations += lp.dual_iterations;
  stats->refactorizations += lp.refactorizations;
  stats->basis_repairs += lp.basis_repairs;
  if (lp.repair_aborted) ++stats->repair_aborted;
  if (lp.warm_started) ++stats->warm_solves;
  // Peaks, not sums: the fill and update-run figures compare against the
  // problem size, so the worst solve is the meaningful one.
  stats->factor_nnz = std::max(stats->factor_nnz, lp.factor_nnz);
  stats->max_update_run = std::max(stats->max_update_run, lp.max_update_run);
  // Sparse-kernel counters add; the mean reach re-weights by solve count.
  const double reach_sum =
      stats->mean_reach_fraction * static_cast<double>(stats->sparse_solves) +
      lp.mean_reach_fraction * static_cast<double>(lp.sparse_solves);
  stats->sparse_solves += lp.sparse_solves;
  stats->sparse_ftran_hits += lp.sparse_ftran_hits;
  stats->mean_reach_fraction =
      stats->sparse_solves > 0
          ? reach_sum / static_cast<double>(stats->sparse_solves)
          : 0.0;
}

// Appends one <= row per DP constraint (rhs rebound per query) and records
// each pair's largest coefficient — the source of the implied bound
// x_p <= B / max_weight[p] that keeps every variable finitely bounded.
void AddDpRows(const DpConstraintSystem& system, lp::LpModel* model,
               std::vector<double>* max_weight) {
  max_weight->assign(system.num_pairs(), 0.0);
  for (size_t r = 0; r < system.num_rows(); ++r) {
    const int row = model->AddConstraint(lp::ConstraintSense::kLessEqual, 1.0);
    for (const DpConstraintEntry& e : system.Row(r)) {
      model->AddCoefficient(row, static_cast<int>(e.pair), e.log_t);
      (*max_weight)[e.pair] = std::max((*max_weight)[e.pair], e.log_t);
    }
  }
}

// ---- O-UMP ------------------------------------------------------------------

class OumpProblem final : public UmpProblem {
 public:
  OumpProblem(const SearchLog& log, DpConstraintSystem* system, OumpSpec spec,
              lp::SimplexOptions simplex)
      : log_(&log), system_(system), spec_(spec), solver_(simplex) {}

  Status Build() {
    model_ = lp::LpModel(lp::ObjectiveSense::kMaximize);
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      model_.AddVariable(0.0, lp::kInfinity, 1.0);
    }
    AddDpRows(*system_, &model_, &max_weight_);
    if (spec_.cap_counts_at_input) {
      caps_.resize(log_->num_pairs());
      for (PairId p = 0; p < log_->num_pairs(); ++p) {
        caps_[p] = log_->pair_total(p);
      }
    }
    return model_.Validate();
  }

  UtilityObjective objective() const override {
    return UtilityObjective::kOutputSize;
  }
  size_t num_pairs() const override { return log_->num_pairs(); }

  Result<UmpSolution> DoSolve(const UmpQuery& query,
                              const WarmStartHint* hint) override {
    PRIVSAN_RETURN_IF_ERROR(query.privacy.Validate());
    WallTimer timer;
    const double budget = query.privacy.Budget();
    system_->SetBudget(budget);
    for (int r = 0; r < model_.num_constraints(); ++r) {
      model_.set_constraint_rhs(r, budget);
    }
    // Implied finite bounds: row k alone caps x_p at B / log t_pk. Finite
    // bounds on every variable let a warm start repair dual infeasibility by
    // bound flips — without them a remapped basis with a newly attractive
    // column (AppendUsers) would force a cold fallback.
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      double upper = max_weight_[p] > 0.0 ? budget / max_weight_[p]
                                          : lp::kInfinity;
      if (spec_.cap_counts_at_input) {
        upper = std::min(upper, static_cast<double>(caps_[p]));
      }
      model_.mutable_variable(static_cast<int>(p)).upper = upper;
    }

    lp::LpSolution lp = solver_.Solve(
        model_, hint != nullptr && !hint->empty() ? &hint->basis : nullptr);
    if (lp.status != lp::SolveStatus::kOptimal) {
      return Status::Internal(std::string("O-UMP LP solve failed: ") +
                              lp::SolveStatusToString(lp.status));
    }

    UmpSolution solution;
    solution.objective = UtilityObjective::kOutputSize;
    solution.objective_value = lp.objective;
    solution.x_relaxed = lp.x;
    solution.stats.warm_started = lp.warm_started;
    solution.stats.root_iterations = lp.iterations;
    FillLpStats(lp, &solution.stats);

    RoundingOptions rounding;
    if (spec_.cap_counts_at_input) rounding.caps = caps_;
    solution.x = RoundCounts(*system_, lp.x, rounding);
    for (uint64_t v : solution.x) solution.output_size += v;
    solution.basis = std::move(lp.basis);
    solution.stats.wall_seconds = timer.ElapsedSeconds();
    return solution;
  }

 private:
  const SearchLog* log_;
  DpConstraintSystem* system_;
  OumpSpec spec_;
  lp::SimplexSolver solver_;
  lp::LpModel model_;
  std::vector<uint64_t> caps_;
  std::vector<double> max_weight_;  // per pair, max log t over its DP rows
};

// ---- F-UMP ------------------------------------------------------------------

// Largest x an infrequent pair may take while staying strictly below
// support `s` of an output of size `total`: x < s * total.
uint64_t InfrequentCap(double min_support, double total) {
  const double threshold = min_support * total;
  double cap = std::ceil(threshold) - 1.0;
  if (std::floor(threshold) == threshold) cap = threshold - 1.0;
  return cap <= 0.0 ? 0 : static_cast<uint64_t>(cap);
}

// The F-UMP LP in scaled form. The paper's Statement-2 LP divides x_f by
// |O| and has deviation variables y_f in support units; multiplying the
// absolute-value rows and the objective through by |O| (y'_f = |O|·y_f)
// leaves an equivalent LP in which |O| appears only in right-hand sides and
// bounds:
//
//   min  sum_f y'_f
//   s.t. DP rows (Eq. 4)          sum log t · x       <= B
//        output size              sum x                = |O|
//        per frequent f           x_f − y'_f          <= s_f·|O|
//                                 x_f + y'_f          >= s_f·|O|
//        0 <= x  (infrequent x capped at ⌈s|O|⌉−1 when enforcing precision)
//
// so a basis from one (B, |O|) cell warm-starts any other — the coefficient
// matrix is fixed per (log, s). The reported support-distance sum is the
// optimal sum y'_f divided back by |O|.
class FumpProblem final : public UmpProblem {
 public:
  FumpProblem(const SearchLog& log, DpConstraintSystem* system, FumpSpec spec,
              lp::SimplexOptions simplex)
      : log_(&log), system_(system), spec_(spec), solver_(simplex) {}

  Status Build() {
    if (!(spec_.min_support > 0.0) || spec_.min_support > 1.0) {
      return Status::InvalidArgument("min_support must lie in (0, 1]");
    }
    if (log_->total_clicks() == 0) {
      return Status::InvalidArgument("input log is empty");
    }
    const double total = static_cast<double>(log_->total_clicks());
    frequent_ = FrequentPairs(*log_, spec_.min_support);
    is_frequent_.assign(log_->num_pairs(), false);
    for (PairId p : frequent_) is_frequent_[p] = true;

    model_ = lp::LpModel(lp::ObjectiveSense::kMinimize);
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      model_.AddVariable(0.0, lp::kInfinity, 0.0);
    }
    support_.resize(frequent_.size());
    for (size_t i = 0; i < frequent_.size(); ++i) {
      model_.AddVariable(0.0, lp::kInfinity, 1.0);
      support_[i] =
          static_cast<double>(log_->pair_total(frequent_[i])) / total;
    }
    const int y_base = static_cast<int>(log_->num_pairs());

    AddDpRows(*system_, &model_, &max_weight_);
    output_row_ = model_.AddConstraint(lp::ConstraintSense::kEqual, 1.0,
                                       "output_size");
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      model_.AddCoefficient(output_row_, static_cast<int>(p), 1.0);
    }
    abs_row_base_ = output_row_ + 1;
    for (size_t i = 0; i < frequent_.size(); ++i) {
      const int x_var = static_cast<int>(frequent_[i]);
      const int y_var = y_base + static_cast<int>(i);
      int row = model_.AddConstraint(lp::ConstraintSense::kLessEqual, 0.0);
      model_.AddCoefficient(row, x_var, 1.0);
      model_.AddCoefficient(row, y_var, -1.0);
      row = model_.AddConstraint(lp::ConstraintSense::kGreaterEqual, 0.0);
      model_.AddCoefficient(row, x_var, 1.0);
      model_.AddCoefficient(row, y_var, 1.0);
    }
    return model_.Validate();
  }

  UtilityObjective objective() const override {
    return UtilityObjective::kFrequentPairs;
  }
  size_t num_pairs() const override { return log_->num_pairs(); }

  Result<UmpSolution> DoSolve(const UmpQuery& query,
                              const WarmStartHint* hint) override {
    PRIVSAN_RETURN_IF_ERROR(query.privacy.Validate());
    if (query.output_size == 0) {
      return Status::InvalidArgument("F-UMP requires output_size > 0");
    }
    WallTimer timer;
    const double budget = query.privacy.Budget();
    const double output_size = static_cast<double>(query.output_size);
    system_->SetBudget(budget);

    const int m = static_cast<int>(system_->num_rows());
    for (int r = 0; r < m; ++r) model_.set_constraint_rhs(r, budget);
    model_.set_constraint_rhs(output_row_, output_size);
    for (size_t i = 0; i < frequent_.size(); ++i) {
      const double rhs = support_[i] * output_size;
      model_.set_constraint_rhs(abs_row_base_ + 2 * static_cast<int>(i), rhs);
      model_.set_constraint_rhs(abs_row_base_ + 2 * static_cast<int>(i) + 1,
                                rhs);
    }

    UmpSolution solution;
    solution.objective = UtilityObjective::kFrequentPairs;
    solution.frequent_pairs = frequent_;

    const lp::Basis* basis_hint =
        hint != nullptr && !hint->empty() ? &hint->basis : nullptr;
    const uint64_t lp_cap = InfrequentCap(spec_.min_support, output_size);

    // Solve with precision caps first; fall back to the paper's plain
    // formulation if the caps make the fixed output size unreachable.
    lp::LpSolution lp;
    if (spec_.enforce_precision) {
      SetVariableBounds(budget, output_size, static_cast<double>(lp_cap));
      lp = solver_.Solve(model_, basis_hint);
      solution.used_precision_caps = lp.status == lp::SolveStatus::kOptimal;
      FillLpStats(lp, &solution.stats);
    }
    if (!solution.used_precision_caps) {
      SetVariableBounds(budget, output_size, lp::kInfinity);
      lp = solver_.Solve(model_, basis_hint);
      FillLpStats(lp, &solution.stats);
    }
    if (lp.status == lp::SolveStatus::kInfeasible) {
      return Status::Infeasible(
          "F-UMP infeasible: requested output_size exceeds the maximum "
          "output size lambda for these privacy parameters");
    }
    if (lp.status != lp::SolveStatus::kOptimal) {
      return Status::Internal(std::string("F-UMP LP solve failed: ") +
                              lp::SolveStatusToString(lp.status));
    }
    solution.stats.warm_started = lp.warm_started;
    solution.stats.root_iterations = lp.iterations;
    // Scale the optimal deviation sum back to support units.
    solution.objective_value = lp.objective / output_size;
    solution.x_relaxed.assign(lp.x.begin(),
                              lp.x.begin() + log_->num_pairs());
    solution.basis = std::move(lp.basis);

    RoundSolution(query, lp_cap, &solution);
    solution.stats.wall_seconds = timer.ElapsedSeconds();
    return solution;
  }

 private:
  // Rebinds all variable bounds for one (B, |O|) query. Every bound is
  // finite and implied by the constraints — row k alone caps x_p at
  // B / log t_pk, the output row caps x_p and the deviations y'_f at |O| —
  // so they never cut the optimum, and a warm start can always repair dual
  // infeasibility by bound flips (see OumpProblem::Solve). Infrequent pairs
  // additionally get the precision cap when one is active.
  void SetVariableBounds(double budget, double output_size,
                         double infrequent_cap) {
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      double upper = max_weight_[p] > 0.0 ? budget / max_weight_[p]
                                          : output_size;
      upper = std::min(upper, output_size);
      if (!is_frequent_[p]) upper = std::min(upper, infrequent_cap);
      model_.mutable_variable(static_cast<int>(p)).upper = upper;
    }
    const int y_base = static_cast<int>(log_->num_pairs());
    for (size_t i = 0; i < frequent_.size(); ++i) {
      model_.mutable_variable(y_base + static_cast<int>(i)).upper =
          output_size;
    }
  }

  // Floor, then distribute the lost mass by largest fractional remainder
  // while the DP rows keep fitting; finally clamp infrequent pairs below
  // the frequency threshold of the realized size (Precision = 1).
  void RoundSolution(const UmpQuery& query, uint64_t lp_cap,
                     UmpSolution* solution) const {
    const size_t n = log_->num_pairs();
    solution->x.resize(n);
    std::vector<double> remainder(n);
    uint64_t floored_total = 0;
    for (PairId p = 0; p < n; ++p) {
      const double value = std::max(0.0, solution->x_relaxed[p]);
      const double floored = std::floor(value + 1e-7);
      solution->x[p] = static_cast<uint64_t>(floored);
      remainder[p] = value - floored;
      floored_total += solution->x[p];
    }

    if (floored_total < query.output_size) {
      std::vector<double> row_lhs(system_->num_rows(), 0.0);
      for (size_t r = 0; r < system_->num_rows(); ++r) {
        row_lhs[r] =
            system_->RowLhs(r, std::span<const uint64_t>(solution->x));
      }
      std::vector<std::vector<std::pair<size_t, double>>> pair_rows(n);
      for (size_t r = 0; r < system_->num_rows(); ++r) {
        for (const DpConstraintEntry& e : system_->Row(r)) {
          pair_rows[e.pair].emplace_back(r, e.log_t);
        }
      }
      std::vector<PairId> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](PairId a, PairId b) {
        if (is_frequent_[a] != is_frequent_[b]) {
          return static_cast<bool>(is_frequent_[a]);
        }
        return remainder[a] > remainder[b];
      });
      uint64_t deficit = query.output_size - floored_total;
      for (PairId p : order) {
        if (deficit == 0) break;
        if (remainder[p] <= 1e-9) continue;  // only top up rounded-down mass
        if (solution->used_precision_caps && !is_frequent_[p] &&
            solution->x[p] + 1 > lp_cap) {
          continue;
        }
        bool fits = true;
        for (const auto& [r, weight] : pair_rows[p]) {
          if (row_lhs[r] + weight > system_->budget() + 1e-12) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;
        for (const auto& [r, weight] : pair_rows[p]) row_lhs[r] += weight;
        ++solution->x[p];
        --deficit;
      }
    }

    if (spec_.enforce_precision) {
      while (true) {
        const uint64_t realized = std::accumulate(
            solution->x.begin(), solution->x.end(), static_cast<uint64_t>(0));
        if (realized == 0) break;
        const uint64_t cap =
            InfrequentCap(spec_.min_support, static_cast<double>(realized));
        bool changed = false;
        for (PairId p = 0; p < n; ++p) {
          if (!is_frequent_[p] && solution->x[p] > cap) {
            solution->x[p] = cap;
            changed = true;
          }
        }
        if (!changed) break;
      }
    }

    solution->output_size = std::accumulate(
        solution->x.begin(), solution->x.end(), static_cast<uint64_t>(0));
  }

  const SearchLog* log_;
  DpConstraintSystem* system_;
  FumpSpec spec_;
  lp::SimplexSolver solver_;
  lp::LpModel model_;
  std::vector<PairId> frequent_;
  std::vector<bool> is_frequent_;
  std::vector<double> support_;  // s_f per frequent pair, input units
  std::vector<double> max_weight_;  // per pair, max log t over its DP rows
  int output_row_ = 0;
  int abs_row_base_ = 0;
};

// ---- D-UMP ------------------------------------------------------------------

class DumpProblem final : public UmpProblem {
 public:
  DumpProblem(const SearchLog& log, DpConstraintSystem* system, DumpSpec spec,
              lp::SimplexOptions simplex)
      : log_(&log), system_(system), spec_(spec), simplex_(simplex) {}

  Status Build() {
    // One source of truth for the LP kernel configuration: the node LPs of
    // branch & bound run on the problem-level simplex options
    // (factorization, pricing, repair policy), not on whatever
    // DumpSpec::bnb.simplex defaulted to — so B&B children ride the same
    // kernel as every other solve of this session.
    spec_.bnb.simplex = simplex_;
    bip_ = BipFromConstraintRows(*system_);
    bip_.rhs.assign(bip_.num_rows, 1.0);  // rebound per query
    col_max_weight_.resize(log_->num_pairs());
    for (PairId p = 0; p < log_->num_pairs(); ++p) {
      double max_weight = 0.0;
      for (const lp::SparseEntry& e : bip_.columns[p]) {
        max_weight = std::max(max_weight, e.value);
      }
      col_max_weight_[p] = max_weight;
    }
    bnb_model_ = bip_.ToLpModel();
    return bnb_model_.Validate();
  }

  UtilityObjective objective() const override {
    return UtilityObjective::kDiversity;
  }
  size_t num_pairs() const override { return log_->num_pairs(); }

  Result<UmpSolution> DoSolve(const UmpQuery& query,
                              const WarmStartHint* hint) override {
    PRIVSAN_RETURN_IF_ERROR(query.privacy.Validate());
    WallTimer timer;
    const double budget = query.privacy.Budget();
    system_->SetBudget(budget);
    bip_.rhs.assign(bip_.num_rows, budget);

    const DumpSolverKind kind = query.solver.value_or(spec_.solver);
    const lp::Basis* basis_hint =
        hint != nullptr && !hint->empty() ? &hint->basis : nullptr;

    UmpSolution solution;
    solution.objective = UtilityObjective::kDiversity;

    std::vector<uint8_t> y;
    switch (kind) {
      case DumpSolverKind::kSpe: {
        PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution s, SolveSpe(bip_));
        y = std::move(s.y);
        break;
      }
      case DumpSolverKind::kGreedy: {
        PRIVSAN_ASSIGN_OR_RETURN(lp::BipSolution s, SolveBipGreedy(bip_));
        y = std::move(s.y);
        break;
      }
      case DumpSolverKind::kLpRounding: {
        PRIVSAN_ASSIGN_OR_RETURN(
            lp::BipSolution s, SolveBipLpRounding(bip_, simplex_, basis_hint));
        y = std::move(s.y);
        solution.stats.simplex_iterations = s.lp_iterations;
        solution.stats.dual_iterations = s.lp_dual_iterations;
        solution.stats.refactorizations = s.lp_refactorizations;
        solution.stats.basis_repairs = s.lp_basis_repairs;
        if (s.lp_repair_aborted) solution.stats.repair_aborted = 1;
        solution.stats.root_iterations = s.lp_iterations;
        solution.stats.warm_started = s.lp_warm_started;
        if (s.lp_warm_started) solution.stats.warm_solves = 1;
        solution.basis = std::move(s.basis);
        break;
      }
      case DumpSolverKind::kBranchAndBound: {
        // Integer presolve: a single entry w_j > B already overruns row j's
        // budget, so y_j = 1 is integrally infeasible — fix the variable
        // before the tree search (the LP relaxation only sees y_j <= B/w_j).
        int fixed = 0;
        for (PairId p = 0; p < log_->num_pairs(); ++p) {
          const bool fix = spec_.integer_presolve &&
                           col_max_weight_[p] > budget + 1e-12;
          bnb_model_.mutable_variable(static_cast<int>(p)).upper =
              fix ? 0.0 : 1.0;
          if (fix) ++fixed;
        }
        for (int r = 0; r < bip_.num_rows; ++r) {
          bnb_model_.set_constraint_rhs(r, budget);
        }
        lp::BnbOptions bnb_options = spec_.bnb;
        bnb_options.root_hint = basis_hint;
        lp::BnbResult bnb = SolveBranchAndBound(bnb_model_, bnb_options);
        if (!bnb.has_incumbent) {
          return Status::Internal("branch & bound found no incumbent");
        }
        y.resize(bip_.num_vars());
        for (int j = 0; j < bip_.num_vars(); ++j) {
          y[j] = bnb.x[j] > 0.5 ? 1 : 0;
        }
        solution.proven_optimal = bnb.proven_optimal;
        solution.stats.simplex_iterations = bnb.lp_iterations;
        solution.stats.dual_iterations = bnb.lp_dual_iterations;
        solution.stats.refactorizations = bnb.lp_refactorizations;
        solution.stats.basis_repairs = bnb.lp_basis_repairs;
        solution.stats.repair_aborted = bnb.repair_aborted;
        solution.stats.nodes_explored = bnb.nodes_explored;
        solution.stats.warm_solves = bnb.warm_solves;
        solution.stats.warm_started = bnb.root_warm_started;
        solution.stats.root_iterations = bnb.root_lp_iterations;
        solution.stats.integer_fixed = fixed;
        solution.basis = std::move(bnb.root_basis);
        break;
      }
    }

    solution.x.assign(y.begin(), y.end());
    for (uint64_t v : solution.x) solution.output_size += v;
    solution.objective_value = static_cast<double>(solution.output_size);
    solution.x_relaxed.assign(solution.x.begin(), solution.x.end());
    solution.stats.wall_seconds = timer.ElapsedSeconds();
    return solution;
  }

 private:
  const SearchLog* log_;
  DpConstraintSystem* system_;
  DumpSpec spec_;
  lp::SimplexOptions simplex_;
  lp::BipProblem bip_;
  lp::LpModel bnb_model_;
  std::vector<double> col_max_weight_;
};

}  // namespace

Result<std::unique_ptr<UmpProblem>> MakeOumpProblem(
    const SearchLog& log, DpConstraintSystem* system, OumpSpec spec,
    lp::SimplexOptions simplex) {
  auto problem = std::make_unique<OumpProblem>(log, system, spec, simplex);
  PRIVSAN_RETURN_IF_ERROR(problem->Build());
  return std::unique_ptr<UmpProblem>(std::move(problem));
}

Result<std::unique_ptr<UmpProblem>> MakeFumpProblem(
    const SearchLog& log, DpConstraintSystem* system, FumpSpec spec,
    lp::SimplexOptions simplex) {
  auto problem = std::make_unique<FumpProblem>(log, system, spec, simplex);
  PRIVSAN_RETURN_IF_ERROR(problem->Build());
  return std::unique_ptr<UmpProblem>(std::move(problem));
}

Result<std::unique_ptr<UmpProblem>> MakeDumpProblem(
    const SearchLog& log, DpConstraintSystem* system, DumpSpec spec,
    lp::SimplexOptions simplex) {
  auto problem = std::make_unique<DumpProblem>(log, system, spec, simplex);
  PRIVSAN_RETURN_IF_ERROR(problem->Build());
  return std::unique_ptr<UmpProblem>(std::move(problem));
}

}  // namespace privsan
