// The one-shot sanitization entry point — Algorithm 1 of the paper.
//
//   Sanitizer sanitizer(config);
//   Result<SanitizeReport> report = sanitizer.Sanitize(input_log);
//
// Pipeline:
//   1. preprocess: remove unique query-url pairs (Condition 1);
//   2. compute optimal output counts x* for the configured utility objective
//      (O-UMP, F-UMP or D-UMP — Section 5);
//   3. optionally add Lap(d/ε′) noise to x* (end-to-end DP, Section 4.2);
//   4. sample user-IDs per pair with multinomial trials (Section 3.2);
//   5. audit the final counts against Theorem 1.
//
// The output search log has exactly the input's schema.
//
// Sanitizer is a thin compatibility wrapper: every call builds a fresh
// SanitizerSession (core/session.h) and discards it. Callers that sanitize
// the same (growing) log repeatedly — appended user logs, (ε, δ) sweeps —
// should hold a session instead and get warm-started re-solves for free.
#ifndef PRIVSAN_CORE_SANITIZER_H_
#define PRIVSAN_CORE_SANITIZER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/audit.h"
#include "core/dump.h"
#include "core/fump.h"
#include "core/laplace_step.h"
#include "core/oump.h"
#include "core/privacy_params.h"
#include "core/session.h"
#include "core/ump.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

// UtilityObjective and SanitizeReport now live in core/ump.h and
// core/session.h respectively; this header re-exports them.

struct SanitizerConfig {
  PrivacyParams privacy;
  UtilityObjective objective = UtilityObjective::kOutputSize;
  uint64_t seed = 42;

  // F-UMP parameters. output_size == 0 means "use λ", the O-UMP maximum.
  double min_support = 1.0 / 500;
  uint64_t output_size = 0;

  // D-UMP solver choice.
  DumpSolverKind dump_solver = DumpSolverKind::kSpe;

  // Optional end-to-end DP noise on the computed counts (§4.2). Disabled by
  // default to match the paper's evaluation, which studies the optimal
  // counts themselves.
  std::optional<LaplaceStepOptions> laplace;

  lp::SimplexOptions simplex;
  lp::BnbOptions bnb;

  // The equivalent stateful-session options.
  SessionOptions ToSessionOptions() const;
};

class Sanitizer {
 public:
  explicit Sanitizer(SanitizerConfig config) : config_(std::move(config)) {}

  const SanitizerConfig& config() const { return config_; }

  // DEPRECATED for repeated use: builds and discards a SanitizerSession per
  // call. Hold a session for warm-started incremental sanitization.
  Result<SanitizeReport> Sanitize(const SearchLog& input) const;

 private:
  SanitizerConfig config_;
};

}  // namespace privsan

#endif  // PRIVSAN_CORE_SANITIZER_H_
