// The differential privacy constraints of Theorem 1 / Equation 4.
//
// For every user log A_k in the (preprocessed) input D, the output counts
// x = {x_ij} must satisfy
//
//   sum_{(i,j) in A_k}  x_ij * log t_ijk  <=  min{ε, log(1/(1−δ))},
//   t_ijk = c_ij / (c_ij − c_ijk),
//
// one linear row per user. All coefficients are strictly positive (unique
// pairs — where c_ijk = c_ij and t would blow up — must already be removed
// by Condition-1 preprocessing; Build fails otherwise). The feasible region
// {Mx <= b, x >= 0} with M, b > 0 is a bounded polytope (Statement 1).
#ifndef PRIVSAN_CORE_CONSTRAINTS_H_
#define PRIVSAN_CORE_CONSTRAINTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/privacy_params.h"
#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

namespace serve {
class ThreadPool;
}  // namespace serve

struct DpConstraintEntry {
  PairId pair;
  double log_t;  // log t_ijk > 0

  bool operator==(const DpConstraintEntry&) const = default;
};

struct DpRowPatch;  // defined below (holds a DpConstraintSystem)

class DpConstraintSystem {
 public:
  // Builds one row per user with a non-empty log. Fails with
  // FailedPrecondition if `log` still contains unique pairs.
  static Result<DpConstraintSystem> Build(const SearchLog& log,
                                          const PrivacyParams& params);

  // The rows depend only on the log — the t_ijk coefficients never involve
  // (ε, δ) — so a cached system can serve every budget cell of a sweep.
  // BuildRows builds the rows once with budget 0; SetBudget rebinds the
  // shared right-hand side without touching the rows.
  //
  // Rows are independent per user, so the shard-aware overload splits the
  // build across `pool` (nullptr = serial). The output is bit-identical to
  // the serial build: shards are fixed user ranges and every coefficient is
  // computed from the same (c_ij, c_ijk) inputs.
  static Result<DpConstraintSystem> BuildRows(const SearchLog& log);
  static Result<DpConstraintSystem> BuildRows(const SearchLog& log,
                                              serve::ThreadPool* pool);
  void SetBudget(double budget) { budget_ = budget; }

  // Incremental BuildRows after an append: `old_system` holds the rows of
  // `old_log`, and `new_log` is the re-preprocessed log after more clicks
  // arrived. A user's row coefficients log(c_ij / (c_ij − c_ijk)) change
  // only when one of their pairs gained clicks — and any appended click on
  // pair (i,j) raises c_ij — so rows of users holding no pair whose total
  // changed are copied verbatim (PairIds remapped) and only the rest are
  // recomputed. The result is bit-identical to BuildRows(new_log): copied
  // doubles equal freshly computed ones because their inputs are unchanged.
  // PairIds may be permuted arbitrarily between the two logs (pairs are
  // matched by name); rows that cannot be safely copied (user log shape
  // changed, a pair missing from the old row) silently fall back to a
  // rebuild of that row.
  static Result<DpRowPatch> PatchRows(const SearchLog& new_log,
                                      const SearchLog& old_log,
                                      const DpConstraintSystem& old_system,
                                      serve::ThreadPool* pool = nullptr);

  // Reassembles a system from its parts — the snapshot-restore path
  // (serve/snapshot.h). Performs no validation beyond sizing; callers are
  // expected to hold rows produced by BuildRows on the matching log.
  static DpConstraintSystem FromRows(
      std::vector<std::vector<DpConstraintEntry>> rows,
      std::vector<UserId> row_users, size_t num_pairs);

  size_t num_rows() const { return rows_.size(); }
  size_t num_pairs() const { return num_pairs_; }
  double budget() const { return budget_; }

  std::span<const DpConstraintEntry> Row(size_t r) const {
    return rows_[r];
  }
  UserId RowUser(size_t r) const { return row_users_[r]; }

  // LHS of row r at point x (x indexed by PairId).
  double RowLhs(size_t r, std::span<const double> x) const;
  double RowLhs(size_t r, std::span<const uint64_t> x) const;

  // max_r RowLhs(r, x); 0 when there are no rows.
  double MaxRowLhs(std::span<const uint64_t> x) const;

  // Whether all rows satisfy LHS <= budget + tol.
  bool IsSatisfied(std::span<const uint64_t> x, double tol = 1e-9) const;

  // Estimated heap footprint of the rows (serve-layer memory accounting).
  size_t ResidentBytes() const;

 private:
  std::vector<std::vector<DpConstraintEntry>> rows_;
  std::vector<UserId> row_users_;
  double budget_ = 0.0;
  size_t num_pairs_ = 0;
};

struct DpRowPatch {
  DpConstraintSystem system;
  size_t rows_copied = 0;   // users whose coefficients were untouched
  size_t rows_rebuilt = 0;  // users holding a changed pair, or new users
};

}  // namespace privsan

#endif  // PRIVSAN_CORE_CONSTRAINTS_H_
