#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace privsan {

Result<AuditReport> AuditSolution(const SearchLog& log,
                                  const PrivacyParams& params,
                                  std::span<const uint64_t> x) {
  PRIVSAN_RETURN_IF_ERROR(params.Validate());
  if (x.size() != log.num_pairs()) {
    return Status::InvalidArgument(
        "count vector size does not match the log's pair count");
  }

  AuditReport report;
  report.budget = params.Budget();
  report.condition1_ok = true;

  // Condition 1: unique pairs must have zero output count.
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (x[p] > 0 && log.PairUserCount(p) <= 1) {
      report.condition1_ok = false;
    }
  }

  // Per-user Equation 2 / Equation 3, computed in log space for stability:
  //   exponent_k = sum_{(i,j) in A_k, c_ijk < c_ij} x_ij * log t_ijk
  //   ratio_k = exp(exponent_k);  leak_k = 1 − exp(−exponent_k).
  for (UserId u = 0; u < log.num_users(); ++u) {
    auto user_log = log.UserLogOf(u);
    if (user_log.empty()) continue;
    double exponent = 0.0;
    bool infinite = false;  // user owns a unique pair with positive count
    for (const PairCount& cell : user_log) {
      if (x[cell.pair] == 0) continue;
      const uint64_t c_ij = log.pair_total(cell.pair);
      const uint64_t c_ijk = cell.count;
      if (c_ijk >= c_ij) {
        infinite = true;
        continue;
      }
      const double log_t = std::log(static_cast<double>(c_ij) /
                                    static_cast<double>(c_ij - c_ijk));
      exponent += log_t * static_cast<double>(x[cell.pair]);
    }
    const double ratio =
        infinite ? std::numeric_limits<double>::infinity() : std::exp(exponent);
    const double leak = infinite ? 1.0 : -std::expm1(-exponent);
    if (ratio > report.max_ratio || leak > report.max_leak_probability) {
      report.worst_user = u;
    }
    report.max_ratio = std::max(report.max_ratio, ratio);
    report.max_leak_probability = std::max(report.max_leak_probability, leak);
    report.max_row_lhs = std::max(report.max_row_lhs, exponent);
  }

  // Small slack absorbs floating-point accumulation; the solvers themselves
  // enforce the budget exactly.
  const double tol = 1e-9;
  report.condition2_ok = report.max_ratio <= std::exp(params.epsilon) + tol;
  report.condition3_ok = report.max_leak_probability <= params.delta + tol;
  report.satisfies_privacy =
      report.condition1_ok && report.condition2_ok && report.condition3_ok;
  return report;
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "privacy " << (satisfies_privacy ? "SATISFIED" : "VIOLATED")
     << " | cond1(unique pairs)=" << (condition1_ok ? "ok" : "FAIL")
     << " cond2(ratio)=" << (condition2_ok ? "ok" : "FAIL")
     << " cond3(leak)=" << (condition3_ok ? "ok" : "FAIL")
     << " | max ratio=" << max_ratio
     << " max leak prob=" << max_leak_probability
     << " max row lhs=" << max_row_lhs << " budget=" << budget;
  return os.str();
}

}  // namespace privsan
