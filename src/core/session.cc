#include "core/session.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/fump.h"
#include "core/sampler.h"
#include "lp/basis_io.h"
#include "serve/thread_pool.h"
#include "util/concurrency_check.h"
#include "util/timer.h"

namespace privsan {

namespace {

constexpr int kNumObjectives = 3;

int Index(UtilityObjective objective) {
  return static_cast<int>(objective);
}

// Old->new index maps shared by every per-objective basis remap of one
// append or removal (name-keyed: PairIds and row order may permute
// arbitrarily across the re-preprocess, and FindPair/FindUser are linear
// scans). Built once per RebuildFromRaw — the serve path appends and
// expires continuously. Entries of vanished pairs/rows (a removed user, a
// pair turned unique by a removal) are -1 and simply dropped by RemapBasis.
struct RemapMaps {
  bool ok = false;
  std::vector<int> pair_map;  // old PairId -> new PairId (-1 = vanished)
  std::vector<int> row_map;   // old row -> new row (-1 = vanished)
};

RemapMaps BuildRemapMaps(const SearchLog& old_log,
                         const DpConstraintSystem& old_system,
                         const SearchLog& new_log,
                         const DpConstraintSystem& new_system) {
  RemapMaps maps;
  std::unordered_map<std::string, PairId> new_pair;
  new_pair.reserve(new_log.num_pairs());
  for (PairId p = 0; p < new_log.num_pairs(); ++p) {
    new_pair.emplace(new_log.PairNameKey(p), p);
  }
  maps.pair_map.assign(old_log.num_pairs(), -1);
  for (PairId p = 0; p < old_log.num_pairs(); ++p) {
    const auto it = new_pair.find(old_log.PairNameKey(p));
    if (it != new_pair.end()) maps.pair_map[p] = static_cast<int>(it->second);
  }
  std::unordered_map<std::string, int> new_row_of_user;
  new_row_of_user.reserve(new_system.num_rows());
  for (size_t r = 0; r < new_system.num_rows(); ++r) {
    new_row_of_user[new_log.user_name(new_system.RowUser(r))] =
        static_cast<int>(r);
  }
  maps.row_map.assign(old_system.num_rows(), -1);
  for (size_t r = 0; r < old_system.num_rows(); ++r) {
    const auto it =
        new_row_of_user.find(old_log.user_name(old_system.RowUser(r)));
    if (it != new_row_of_user.end()) maps.row_map[r] = it->second;
  }
  maps.ok = true;
  return maps;
}

// Maps a basis of the old (log, system) model onto the resized one:
// surviving pairs and user rows keep their status under their new indices;
// appended pairs enter nonbasic at zero, appended users' slack rows enter
// basic; statuses of vanished columns and rows are dropped. Dropping a
// basic structural column (or gaining rows whose covering column vanished)
// unbalances the basic count, so the map is followed by a repair pass:
// missing basics are filled with row slacks, surplus basics are demoted
// structurals — the dual simplex then re-establishes feasibility in a few
// pivots, exactly its warm-start job. Valid for the models whose
// structural variables are the pairs in PairId order and whose rows are
// the DP rows (O-UMP and the D-UMP relaxation). Returns an empty basis
// when the mapping breaks down — the next solve then simply runs cold.
lp::Basis RemapBasis(const lp::Basis& old_basis, const RemapMaps& maps,
                     size_t n_new, size_t m_new) {
  const size_t n_old = maps.pair_map.size();
  const size_t m_old = maps.row_map.size();
  if (!maps.ok || old_basis.state.size() != n_old + m_old ||
      old_basis.basic.size() != m_old) {
    return {};
  }

  lp::Basis basis;
  basis.state.assign(n_new + m_new, lp::VarStatus::kAtLower);
  for (size_t r = 0; r < m_new; ++r) {
    basis.state[n_new + r] = lp::VarStatus::kBasic;
  }
  for (size_t j = 0; j < n_old; ++j) {
    if (maps.pair_map[j] >= 0) basis.state[maps.pair_map[j]] =
        old_basis.state[j];
  }
  for (size_t r = 0; r < m_old; ++r) {
    if (maps.row_map[r] >= 0) basis.state[n_new + maps.row_map[r]] =
        old_basis.state[n_old + r];
  }
  size_t num_basic = 0;
  for (size_t j = 0; j < basis.state.size(); ++j) {
    if (basis.state[j] == lp::VarStatus::kBasic) ++num_basic;
  }
  // Repair the basic count. Shortfall (a removed user's basic structural
  // column vanished): promote the slacks of rows left without a basic —
  // any slack works, the dual repair sorts out feasibility. Surplus (rows
  // vanished under a surviving basic structural): demote structurals back
  // to their lower bound.
  for (size_t r = 0; num_basic < m_new && r < m_new; ++r) {
    if (basis.state[n_new + r] != lp::VarStatus::kBasic) {
      basis.state[n_new + r] = lp::VarStatus::kBasic;
      ++num_basic;
    }
  }
  for (size_t j = 0; num_basic > m_new && j < n_new; ++j) {
    if (basis.state[j] == lp::VarStatus::kBasic) {
      basis.state[j] = lp::VarStatus::kAtLower;
      --num_basic;
    }
  }
  for (size_t j = 0; j < basis.state.size(); ++j) {
    if (basis.state[j] == lp::VarStatus::kBasic) {
      basis.basic.push_back(static_cast<int>(j));
    }
  }
  if (basis.basic.size() != m_new) return {};
  return basis;
}

// Whether `basis` has the shape of the objective's model over (log,
// system). F-UMP adds one deviation variable and two rows per frequent
// pair plus the output-size row; O-UMP and the D-UMP relaxation are the
// pairs over the DP rows.
bool BasisShapeMatches(const lp::Basis& basis, UtilityObjective objective,
                       const SearchLog& log, const DpConstraintSystem& system,
                       double fump_min_support) {
  size_t n = log.num_pairs();
  size_t m = system.num_rows();
  if (objective == UtilityObjective::kFrequentPairs) {
    const size_t f = FrequentPairs(log, fump_min_support).size();
    n += f;
    m += 1 + 2 * f;
  }
  return lp::ValidateBasisShape(basis, n, m).ok();
}

}  // namespace

struct SanitizerSession::State {
  SessionOptions options;
  SearchLog raw;   // accumulated raw input (pre-Condition-1)
  SearchLog log;   // preprocessed
  PreprocessStats stats;
  DpConstraintSystem system;  // shared rows; budget rebound per solve
  std::unique_ptr<UmpProblem> problems[kNumObjectives];
  lp::Basis last_basis[kNumObjectives];
  AppendStats append_stats;
  RemoveStats remove_stats;
  internal::NonConcurrentChecker checker;
  // The support the next F-UMP solve should use (SweepOptions can override
  // it for the duration of a sweep) and the support the cached F-UMP
  // problem was actually built with (-1 = no cached problem). SolveInternal
  // rebuilds lazily when they disagree, so switching back and forth between
  // supports only rebuilds when a solve actually needs the other model.
  double fump_min_support = 0.0;
  double fump_problem_support = -1.0;
  // Which objectives had a built model before the last rebuild — the set
  // PrewarmProblems() restores so a flusher can move model construction
  // off the query path.
  bool had_problem[kNumObjectives] = {false, false, false};
  // Cached by RecomputeResidentBase(): bytes of raw + log + system, the
  // parts whose measurement walks every dictionary string. Refreshed on
  // every rebuild/restore; bases and models are added per ResidentBytes()
  // call (they are cheap to size).
  size_t resident_base_bytes = 0;
  size_t system_bytes = 0;

  void RecomputeResidentBase() {
    system_bytes = system.ResidentBytes();
    resident_base_bytes =
        raw.ResidentBytes() + log.ResidentBytes() + system_bytes;
  }
};

SanitizerSession::SanitizerSession(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
SanitizerSession::SanitizerSession(SanitizerSession&&) noexcept = default;
SanitizerSession& SanitizerSession::operator=(SanitizerSession&&) noexcept =
    default;
SanitizerSession::~SanitizerSession() = default;

const SessionOptions& SanitizerSession::options() const {
  return state_->options;
}
const SearchLog& SanitizerSession::raw_log() const { return state_->raw; }
const SearchLog& SanitizerSession::log() const { return state_->log; }
const PreprocessStats& SanitizerSession::preprocess_stats() const {
  return state_->stats;
}
const AppendStats& SanitizerSession::last_append_stats() const {
  return state_->append_stats;
}
const RemoveStats& SanitizerSession::last_remove_stats() const {
  return state_->remove_stats;
}

size_t SanitizerSession::ResidentBytes() const {
  const State& s = *state_;
  size_t bytes = s.resident_base_bytes;
  for (const lp::Basis& basis : s.last_basis) {
    bytes += basis.basic.capacity() * sizeof(int) +
             basis.state.capacity() * sizeof(lp::VarStatus);
  }
  for (const auto& problem : s.problems) {
    // Each built model carries (roughly) its own copy of the DP rows as an
    // LP constraint matrix; one system's worth per problem is the estimate.
    if (problem != nullptr) bytes += s.system_bytes;
  }
  return bytes;
}

Result<SanitizerSession> SanitizerSession::Create(const SearchLog& input,
                                                  SessionOptions options) {
  auto state = std::make_unique<State>();
  state->options = std::move(options);
  state->fump_min_support = state->options.fump.min_support;
  state->raw = input;
  SanitizerSession session(std::move(state));
  PRIVSAN_RETURN_IF_ERROR(session.RebuildFromRaw(/*remap_bases=*/false));
  return session;
}

SessionSnapshot SanitizerSession::Snapshot() const {
  internal::NonConcurrentScope scope(&state_->checker);
  SessionSnapshot snapshot;
  snapshot.raw = state_->raw;
  snapshot.log = state_->log;
  snapshot.stats = state_->stats;
  snapshot.system = state_->system;
  snapshot.bases.assign(std::begin(state_->last_basis),
                        std::end(state_->last_basis));
  return snapshot;
}

Result<SanitizerSession> SanitizerSession::FromSnapshot(
    SessionSnapshot snapshot, SessionOptions options) {
  if (snapshot.system.num_pairs() != snapshot.log.num_pairs()) {
    return Status::InvalidArgument(
        "snapshot DP system does not match its preprocessed log (" +
        std::to_string(snapshot.system.num_pairs()) + " vs " +
        std::to_string(snapshot.log.num_pairs()) + " pairs)");
  }
  auto state = std::make_unique<State>();
  state->options = std::move(options);
  state->fump_min_support = state->options.fump.min_support;
  state->raw = std::move(snapshot.raw);
  state->log = std::move(snapshot.log);
  state->stats = snapshot.stats;
  state->system = std::move(snapshot.system);
  for (int i = 0; i < kNumObjectives; ++i) {
    if (static_cast<size_t>(i) >= snapshot.bases.size()) break;
    lp::Basis& basis = snapshot.bases[i];
    if (basis.empty() ||
        !BasisShapeMatches(basis, static_cast<UtilityObjective>(i),
                           state->log, state->system,
                           state->fump_min_support)) {
      continue;  // warm start lost, correctness kept
    }
    state->last_basis[i] = std::move(basis);
  }
  state->RecomputeResidentBase();
  return SanitizerSession(std::move(state));
}

Status SanitizerSession::RebuildFromRaw(bool remap_bases) {
  State& s = *state_;
  SearchLog old_log;
  DpConstraintSystem old_system;
  if (remap_bases) {
    old_log = std::move(s.log);
    old_system = std::move(s.system);
  }

  PreprocessResult preprocessed = RemoveUniquePairs(s.raw, s.options.pool);
  s.log = std::move(preprocessed.log);
  s.stats = preprocessed.stats;
  if (remap_bases) {
    // Incremental re-derive: copy the rows whose users saw no click-total
    // movement, recompute the rest. Bit-identical to a full BuildRows.
    PRIVSAN_ASSIGN_OR_RETURN(
        DpRowPatch patched,
        DpConstraintSystem::PatchRows(s.log, old_log, old_system,
                                      s.options.pool));
    s.system = std::move(patched.system);
    s.append_stats.rows_copied = patched.rows_copied;
    s.append_stats.rows_rebuilt = patched.rows_rebuilt;
  } else {
    PRIVSAN_ASSIGN_OR_RETURN(s.system,
                             DpConstraintSystem::BuildRows(s.log,
                                                           s.options.pool));
  }
  for (int i = 0; i < kNumObjectives; ++i) {
    s.had_problem[i] = s.problems[i] != nullptr;
    s.problems[i].reset();
  }
  s.fump_problem_support = -1.0;

  // Carry the O-UMP / D-UMP optimal bases over to the grown model (the
  // index maps are shared across objectives). The F-UMP basis is dropped:
  // its frequent set (hence its variable and row layout) changes with the
  // appended clicks.
  const bool have_bases =
      remap_bases &&
      std::any_of(std::begin(s.last_basis), std::end(s.last_basis),
                  [](const lp::Basis& b) { return !b.empty(); });
  const RemapMaps maps =
      have_bases ? BuildRemapMaps(old_log, old_system, s.log, s.system)
                 : RemapMaps{};
  for (UtilityObjective objective :
       {UtilityObjective::kOutputSize, UtilityObjective::kDiversity}) {
    lp::Basis& basis = s.last_basis[Index(objective)];
    if (have_bases && !basis.empty()) {
      basis = RemapBasis(basis, maps, s.log.num_pairs(), s.system.num_rows());
    } else {
      basis = {};
    }
  }
  s.last_basis[Index(UtilityObjective::kFrequentPairs)] = {};
  s.RecomputeResidentBase();
  return Status::OK();
}

Status SanitizerSession::RemoveUsers(
    const std::vector<std::string>& user_names) {
  internal::NonConcurrentScope scope(&state_->checker);
  WallTimer timer;
  State& s = *state_;
  const std::unordered_set<std::string_view> doomed(user_names.begin(),
                                                    user_names.end());
  s.remove_stats = {};
  if (doomed.empty()) return Status::OK();

  // Rebuild the raw log from the survivors, in their original id order so
  // a from-scratch build of the same survivor set produces the identical
  // log (the bit-equality contract of the incremental row patch).
  SearchLogBuilder builder;
  size_t removed = 0;
  for (UserId u = 0; u < s.raw.num_users(); ++u) {
    const std::string& name = s.raw.user_name(u);
    if (doomed.contains(name)) {
      ++removed;
      continue;
    }
    builder.DeclareUser(name);
    for (const PairCount& cell : s.raw.UserLogOf(u)) {
      builder.Add(name, s.raw.query_name(s.raw.pair_query(cell.pair)),
                  s.raw.url_name(s.raw.pair_url(cell.pair)), cell.count);
    }
  }
  if (removed == 0) {
    s.remove_stats.seconds = timer.ElapsedSeconds();
    return Status::OK();  // idempotent: none of the names are present
  }
  s.raw = builder.Build();
  s.append_stats = {};
  PRIVSAN_RETURN_IF_ERROR(RebuildFromRaw(/*remap_bases=*/true));
  s.remove_stats.removed_users = removed;
  s.remove_stats.rows_copied = s.append_stats.rows_copied;
  s.remove_stats.rows_rebuilt = s.append_stats.rows_rebuilt;
  s.append_stats = {};
  s.remove_stats.seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status SanitizerSession::AppendUsers(const SearchLog& more) {
  internal::NonConcurrentScope scope(&state_->checker);
  WallTimer timer;
  State& s = *state_;
  SearchLogBuilder builder;
  builder.AddAll(s.raw);
  builder.AddAll(more);
  s.raw = builder.Build();
  s.append_stats = {};
  s.append_stats.appended_users = more.num_users();
  PRIVSAN_RETURN_IF_ERROR(RebuildFromRaw(/*remap_bases=*/true));
  s.append_stats.seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Result<UmpSolution> SanitizerSession::SolveInternal(
    UtilityObjective objective, const UmpQuery& query, bool warm) {
  State& s = *state_;
  if (s.log.num_pairs() == 0) {
    return Status::FailedPrecondition(
        "nothing to sanitize: every query-url pair is unique to one user");
  }

  UmpQuery effective = query;
  if (objective == UtilityObjective::kFrequentPairs &&
      effective.output_size == 0) {
    // Resolve |O| = λ through the cached (and warm-started) O-UMP.
    PRIVSAN_ASSIGN_OR_RETURN(
        UmpSolution oump,
        SolveInternal(UtilityObjective::kOutputSize, {query.privacy}, warm));
    if (oump.output_size == 0) {
      return Status::Infeasible(
          "privacy budget too tight: the maximum output size lambda is 0");
    }
    effective.output_size = oump.output_size;
  }

  const int i = Index(objective);
  if (objective == UtilityObjective::kFrequentPairs &&
      s.problems[i] != nullptr &&
      s.fump_problem_support != s.fump_min_support) {
    // The cached model was shaped by a different frequent set.
    s.problems[i].reset();
    s.last_basis[i] = {};
  }
  PRIVSAN_RETURN_IF_ERROR(EnsureProblem(objective));

  WarmStartHint hint;
  const WarmStartHint* hint_ptr = nullptr;
  if (warm && !s.last_basis[i].empty()) {
    hint.basis = s.last_basis[i];
    hint_ptr = &hint;
  }
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution,
                           s.problems[i]->Solve(effective, hint_ptr));
  if (warm && !solution.basis.empty()) {
    s.last_basis[i] = solution.basis;
  }
  return solution;
}

Status SanitizerSession::EnsureProblem(UtilityObjective objective) {
  State& s = *state_;
  const int i = Index(objective);
  if (s.problems[i] != nullptr) return Status::OK();
  switch (objective) {
    case UtilityObjective::kOutputSize: {
      PRIVSAN_ASSIGN_OR_RETURN(
          s.problems[i], MakeOumpProblem(s.log, &s.system, s.options.oump,
                                         s.options.simplex));
      break;
    }
    case UtilityObjective::kFrequentPairs: {
      FumpSpec spec = s.options.fump;
      spec.min_support = s.fump_min_support;
      PRIVSAN_ASSIGN_OR_RETURN(
          s.problems[i],
          MakeFumpProblem(s.log, &s.system, spec, s.options.simplex));
      s.fump_problem_support = s.fump_min_support;
      break;
    }
    case UtilityObjective::kDiversity: {
      PRIVSAN_ASSIGN_OR_RETURN(
          s.problems[i], MakeDumpProblem(s.log, &s.system, s.options.dump,
                                         s.options.simplex));
      break;
    }
  }
  return Status::OK();
}

Status SanitizerSession::PrewarmProblems() {
  internal::NonConcurrentScope scope(&state_->checker);
  State& s = *state_;
  if (s.log.num_pairs() == 0) return Status::OK();
  for (int i = 0; i < kNumObjectives; ++i) {
    if (!s.had_problem[i] || s.problems[i] != nullptr) continue;
    PRIVSAN_RETURN_IF_ERROR(
        EnsureProblem(static_cast<UtilityObjective>(i)));
  }
  return Status::OK();
}

Result<UmpSolution> SanitizerSession::Solve(UtilityObjective objective,
                                            const UmpQuery& query) {
  internal::NonConcurrentScope scope(&state_->checker);
  return SolveInternal(objective, query, /*warm=*/true);
}

Result<SweepResult> SanitizerSession::SweepBudgets(
    UtilityObjective objective, const std::vector<UmpQuery>& grid,
    const SweepOptions& sweep) {
  internal::NonConcurrentScope scope(&state_->checker);
  WallTimer timer;
  State& s = *state_;
  // The min-support override is scoped to this sweep: the session's own
  // support is restored on every exit path. Rebuilding is lazy (keyed on
  // fump_problem_support in SolveInternal), so repeated sweeps at the same
  // override reuse the cached model.
  const double saved_support = s.fump_min_support;
  if (sweep.min_support.has_value()) s.fump_min_support = *sweep.min_support;

  SweepResult result;
  result.cells.reserve(grid.size());
  Status error = Status::OK();
  for (const UmpQuery& query : grid) {
    Result<UmpSolution> cell = SolveInternal(objective, query,
                                             sweep.warm_start);
    if (!cell.ok()) {
      error = cell.status();
      break;
    }
    result.total_simplex_iterations += cell->stats.simplex_iterations;
    result.total_dual_iterations += cell->stats.dual_iterations;
    result.total_root_iterations += cell->stats.root_iterations;
    result.repair_aborted += cell->stats.repair_aborted;
    if (cell->stats.warm_started) ++result.warm_solves;
    result.factor_nnz = std::max(result.factor_nnz, cell->stats.factor_nnz);
    result.max_update_run =
        std::max(result.max_update_run, cell->stats.max_update_run);
    const double reach_sum =
        result.mean_reach_fraction *
            static_cast<double>(result.sparse_solves) +
        cell->stats.mean_reach_fraction *
            static_cast<double>(cell->stats.sparse_solves);
    result.sparse_solves += cell->stats.sparse_solves;
    result.sparse_ftran_hits += cell->stats.sparse_ftran_hits;
    result.mean_reach_fraction =
        result.sparse_solves > 0
            ? reach_sum / static_cast<double>(result.sparse_solves)
            : 0.0;
    result.cells.push_back(std::move(*cell));
  }
  s.fump_min_support = saved_support;
  PRIVSAN_RETURN_IF_ERROR(error);
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<SanitizeReport> SanitizerSession::Sanitize(
    const PrivacyParams& privacy) {
  internal::NonConcurrentScope scope(&state_->checker);
  State& s = *state_;
  PRIVSAN_RETURN_IF_ERROR(privacy.Validate());
  WallTimer timer;

  UmpQuery query;
  query.privacy = privacy;
  if (s.options.objective == UtilityObjective::kFrequentPairs) {
    // F-UMP needs |O| in (0, λ]; compute λ and clamp the request so a
    // too-ambitious output size degrades gracefully instead of failing.
    PRIVSAN_ASSIGN_OR_RETURN(
        UmpSolution oump,
        SolveInternal(UtilityObjective::kOutputSize, {privacy}, true));
    if (oump.output_size == 0) {
      return Status::Infeasible(
          "privacy budget too tight: the maximum output size lambda is 0");
    }
    query.output_size = s.options.output_size == 0
                            ? oump.output_size
                            : std::min(s.options.output_size,
                                       oump.output_size);
  }
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution,
                           SolveInternal(s.options.objective, query, true));

  SanitizeReport report;
  report.preprocessed_input = s.log;
  report.preprocess_stats = s.stats;
  report.optimal_counts = std::move(solution.x);

  // Optional end-to-end Laplace noise on the counts (§4.2).
  if (s.options.laplace.has_value()) {
    PRIVSAN_ASSIGN_OR_RETURN(
        LaplaceStepResult noisy,
        AddLaplaceNoise(s.log, privacy, solution.x_relaxed,
                        *s.options.laplace));
    report.optimal_counts = std::move(noisy.x);
  }

  report.output_size = std::accumulate(report.optimal_counts.begin(),
                                       report.optimal_counts.end(),
                                       static_cast<uint64_t>(0));

  PRIVSAN_ASSIGN_OR_RETURN(
      report.output,
      SampleOutput(s.log, report.optimal_counts, s.options.seed));

  PRIVSAN_ASSIGN_OR_RETURN(
      report.audit, AuditSolution(s.log, privacy, report.optimal_counts));
  if (!report.audit.satisfies_privacy && !s.options.laplace.has_value()) {
    // Without noise the solvers guarantee feasibility; a failed audit means
    // a bug, so surface it loudly rather than returning a bad log.
    return Status::Internal("privacy audit failed on noise-free counts: " +
                            report.audit.ToString());
  }

  report.solve_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace privsan
