#include "core/session.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/sampler.h"
#include "util/timer.h"

namespace privsan {

namespace {

constexpr int kNumObjectives = 3;

int Index(UtilityObjective objective) {
  return static_cast<int>(objective);
}

// Maps a basis of the old (log, system) model onto the grown one: surviving
// pairs and user rows keep their status under their new indices, appended
// pairs enter nonbasic at zero, appended users' slack rows enter basic.
// Valid for the models whose structural variables are exactly the pairs in
// PairId order and whose rows are the DP rows (O-UMP and the D-UMP
// relaxation). Returns an empty basis when the mapping breaks down — the
// next solve then simply runs cold.
lp::Basis RemapBasis(const lp::Basis& old_basis, const SearchLog& old_log,
                     const DpConstraintSystem& old_system,
                     const SearchLog& new_log,
                     const DpConstraintSystem& new_system) {
  const size_t n_old = old_log.num_pairs();
  const size_t m_old = old_system.num_rows();
  const size_t n_new = new_log.num_pairs();
  const size_t m_new = new_system.num_rows();
  if (old_basis.state.size() != n_old + m_old ||
      old_basis.basic.size() != m_old) {
    return {};
  }

  // Appending clicks never turns a shared pair unique, so every old pair
  // survives preprocessing; defend anyway.
  std::vector<int> pair_map(n_old, -1);
  for (PairId p = 0; p < n_old; ++p) {
    Result<PairId> found =
        new_log.FindPair(old_log.query_name(old_log.pair_query(p)),
                         old_log.url_name(old_log.pair_url(p)));
    if (!found.ok()) return {};
    pair_map[p] = static_cast<int>(*found);
  }
  std::unordered_map<std::string, int> new_row_of_user;
  new_row_of_user.reserve(m_new);
  for (size_t r = 0; r < m_new; ++r) {
    new_row_of_user[new_log.user_name(new_system.RowUser(r))] =
        static_cast<int>(r);
  }
  std::vector<int> row_map(m_old, -1);
  for (size_t r = 0; r < m_old; ++r) {
    auto it =
        new_row_of_user.find(old_log.user_name(old_system.RowUser(r)));
    if (it == new_row_of_user.end()) return {};
    row_map[r] = it->second;
  }

  lp::Basis basis;
  basis.state.assign(n_new + m_new, lp::VarStatus::kAtLower);
  for (size_t r = 0; r < m_new; ++r) {
    basis.state[n_new + r] = lp::VarStatus::kBasic;
  }
  for (size_t j = 0; j < n_old; ++j) {
    basis.state[pair_map[j]] = old_basis.state[j];
  }
  for (size_t r = 0; r < m_old; ++r) {
    basis.state[n_new + row_map[r]] = old_basis.state[n_old + r];
  }
  for (size_t j = 0; j < basis.state.size(); ++j) {
    if (basis.state[j] == lp::VarStatus::kBasic) {
      basis.basic.push_back(static_cast<int>(j));
    }
  }
  if (basis.basic.size() != m_new) return {};
  return basis;
}

}  // namespace

struct SanitizerSession::State {
  SessionOptions options;
  SearchLog raw;   // accumulated raw input (pre-Condition-1)
  SearchLog log;   // preprocessed
  PreprocessStats stats;
  DpConstraintSystem system;  // shared rows; budget rebound per solve
  std::unique_ptr<UmpProblem> problems[kNumObjectives];
  lp::Basis last_basis[kNumObjectives];
  // The support the next F-UMP solve should use (SweepOptions can override
  // it for the duration of a sweep) and the support the cached F-UMP
  // problem was actually built with (-1 = no cached problem). SolveInternal
  // rebuilds lazily when they disagree, so switching back and forth between
  // supports only rebuilds when a solve actually needs the other model.
  double fump_min_support = 0.0;
  double fump_problem_support = -1.0;
};

SanitizerSession::SanitizerSession(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
SanitizerSession::SanitizerSession(SanitizerSession&&) noexcept = default;
SanitizerSession& SanitizerSession::operator=(SanitizerSession&&) noexcept =
    default;
SanitizerSession::~SanitizerSession() = default;

const SessionOptions& SanitizerSession::options() const {
  return state_->options;
}
const SearchLog& SanitizerSession::raw_log() const { return state_->raw; }
const SearchLog& SanitizerSession::log() const { return state_->log; }
const PreprocessStats& SanitizerSession::preprocess_stats() const {
  return state_->stats;
}

Result<SanitizerSession> SanitizerSession::Create(const SearchLog& input,
                                                  SessionOptions options) {
  auto state = std::make_unique<State>();
  state->options = std::move(options);
  state->fump_min_support = state->options.fump.min_support;
  state->raw = input;
  SanitizerSession session(std::move(state));
  PRIVSAN_RETURN_IF_ERROR(session.RebuildFromRaw(/*remap_bases=*/false));
  return session;
}

Status SanitizerSession::RebuildFromRaw(bool remap_bases) {
  State& s = *state_;
  SearchLog old_log;
  DpConstraintSystem old_system;
  const bool have_bases =
      remap_bases &&
      std::any_of(std::begin(s.last_basis), std::end(s.last_basis),
                  [](const lp::Basis& b) { return !b.empty(); });
  if (have_bases) {
    old_log = std::move(s.log);
    old_system = std::move(s.system);
  }

  PreprocessResult preprocessed = RemoveUniquePairs(s.raw);
  s.log = std::move(preprocessed.log);
  s.stats = preprocessed.stats;
  PRIVSAN_ASSIGN_OR_RETURN(s.system, DpConstraintSystem::BuildRows(s.log));
  for (auto& problem : s.problems) problem.reset();
  s.fump_problem_support = -1.0;

  // Carry the O-UMP / D-UMP optimal bases over to the grown model. The
  // F-UMP basis is dropped: its frequent set (hence its variable and row
  // layout) changes with the appended clicks.
  for (UtilityObjective objective :
       {UtilityObjective::kOutputSize, UtilityObjective::kDiversity}) {
    lp::Basis& basis = s.last_basis[Index(objective)];
    if (have_bases && !basis.empty()) {
      basis = RemapBasis(basis, old_log, old_system, s.log, s.system);
    } else {
      basis = {};
    }
  }
  s.last_basis[Index(UtilityObjective::kFrequentPairs)] = {};
  return Status::OK();
}

Status SanitizerSession::AppendUsers(const SearchLog& more) {
  State& s = *state_;
  SearchLogBuilder builder;
  const auto add_all = [&builder](const SearchLog& src) {
    for (UserId u = 0; u < src.num_users(); ++u) {
      for (const PairCount& cell : src.UserLogOf(u)) {
        builder.Add(src.user_name(u),
                    src.query_name(src.pair_query(cell.pair)),
                    src.url_name(src.pair_url(cell.pair)), cell.count);
      }
    }
  };
  add_all(s.raw);
  add_all(more);
  s.raw = builder.Build();
  return RebuildFromRaw(/*remap_bases=*/true);
}

Result<UmpSolution> SanitizerSession::SolveInternal(
    UtilityObjective objective, const UmpQuery& query, bool warm) {
  State& s = *state_;
  if (s.log.num_pairs() == 0) {
    return Status::FailedPrecondition(
        "nothing to sanitize: every query-url pair is unique to one user");
  }

  UmpQuery effective = query;
  if (objective == UtilityObjective::kFrequentPairs &&
      effective.output_size == 0) {
    // Resolve |O| = λ through the cached (and warm-started) O-UMP.
    PRIVSAN_ASSIGN_OR_RETURN(
        UmpSolution oump,
        SolveInternal(UtilityObjective::kOutputSize, {query.privacy}, warm));
    if (oump.output_size == 0) {
      return Status::Infeasible(
          "privacy budget too tight: the maximum output size lambda is 0");
    }
    effective.output_size = oump.output_size;
  }

  const int i = Index(objective);
  if (objective == UtilityObjective::kFrequentPairs &&
      s.problems[i] != nullptr &&
      s.fump_problem_support != s.fump_min_support) {
    // The cached model was shaped by a different frequent set.
    s.problems[i].reset();
    s.last_basis[i] = {};
  }
  if (s.problems[i] == nullptr) {
    switch (objective) {
      case UtilityObjective::kOutputSize: {
        PRIVSAN_ASSIGN_OR_RETURN(
            s.problems[i], MakeOumpProblem(s.log, &s.system, s.options.oump,
                                           s.options.simplex));
        break;
      }
      case UtilityObjective::kFrequentPairs: {
        FumpSpec spec = s.options.fump;
        spec.min_support = s.fump_min_support;
        PRIVSAN_ASSIGN_OR_RETURN(
            s.problems[i],
            MakeFumpProblem(s.log, &s.system, spec, s.options.simplex));
        s.fump_problem_support = s.fump_min_support;
        break;
      }
      case UtilityObjective::kDiversity: {
        PRIVSAN_ASSIGN_OR_RETURN(
            s.problems[i], MakeDumpProblem(s.log, &s.system, s.options.dump,
                                           s.options.simplex));
        break;
      }
    }
  }

  WarmStartHint hint;
  const WarmStartHint* hint_ptr = nullptr;
  if (warm && !s.last_basis[i].empty()) {
    hint.basis = s.last_basis[i];
    hint_ptr = &hint;
  }
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution,
                           s.problems[i]->Solve(effective, hint_ptr));
  if (warm && !solution.basis.empty()) {
    s.last_basis[i] = solution.basis;
  }
  return solution;
}

Result<UmpSolution> SanitizerSession::Solve(UtilityObjective objective,
                                            const UmpQuery& query) {
  return SolveInternal(objective, query, /*warm=*/true);
}

Result<SweepResult> SanitizerSession::SweepBudgets(
    UtilityObjective objective, const std::vector<UmpQuery>& grid,
    const SweepOptions& sweep) {
  WallTimer timer;
  State& s = *state_;
  // The min-support override is scoped to this sweep: the session's own
  // support is restored on every exit path. Rebuilding is lazy (keyed on
  // fump_problem_support in SolveInternal), so repeated sweeps at the same
  // override reuse the cached model.
  const double saved_support = s.fump_min_support;
  if (sweep.min_support.has_value()) s.fump_min_support = *sweep.min_support;

  SweepResult result;
  result.cells.reserve(grid.size());
  Status error = Status::OK();
  for (const UmpQuery& query : grid) {
    Result<UmpSolution> cell = SolveInternal(objective, query,
                                             sweep.warm_start);
    if (!cell.ok()) {
      error = cell.status();
      break;
    }
    result.total_simplex_iterations += cell->stats.simplex_iterations;
    result.total_dual_iterations += cell->stats.dual_iterations;
    result.total_root_iterations += cell->stats.root_iterations;
    if (cell->stats.warm_started) ++result.warm_solves;
    result.cells.push_back(std::move(*cell));
  }
  s.fump_min_support = saved_support;
  PRIVSAN_RETURN_IF_ERROR(error);
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<SanitizeReport> SanitizerSession::Sanitize(
    const PrivacyParams& privacy) {
  State& s = *state_;
  PRIVSAN_RETURN_IF_ERROR(privacy.Validate());
  WallTimer timer;

  UmpQuery query;
  query.privacy = privacy;
  if (s.options.objective == UtilityObjective::kFrequentPairs) {
    // F-UMP needs |O| in (0, λ]; compute λ and clamp the request so a
    // too-ambitious output size degrades gracefully instead of failing.
    PRIVSAN_ASSIGN_OR_RETURN(
        UmpSolution oump,
        SolveInternal(UtilityObjective::kOutputSize, {privacy}, true));
    if (oump.output_size == 0) {
      return Status::Infeasible(
          "privacy budget too tight: the maximum output size lambda is 0");
    }
    query.output_size = s.options.output_size == 0
                            ? oump.output_size
                            : std::min(s.options.output_size,
                                       oump.output_size);
  }
  PRIVSAN_ASSIGN_OR_RETURN(UmpSolution solution,
                           Solve(s.options.objective, query));

  SanitizeReport report;
  report.preprocessed_input = s.log;
  report.preprocess_stats = s.stats;
  report.optimal_counts = std::move(solution.x);

  // Optional end-to-end Laplace noise on the counts (§4.2).
  if (s.options.laplace.has_value()) {
    PRIVSAN_ASSIGN_OR_RETURN(
        LaplaceStepResult noisy,
        AddLaplaceNoise(s.log, privacy, solution.x_relaxed,
                        *s.options.laplace));
    report.optimal_counts = std::move(noisy.x);
  }

  report.output_size = std::accumulate(report.optimal_counts.begin(),
                                       report.optimal_counts.end(),
                                       static_cast<uint64_t>(0));

  PRIVSAN_ASSIGN_OR_RETURN(
      report.output,
      SampleOutput(s.log, report.optimal_counts, s.options.seed));

  PRIVSAN_ASSIGN_OR_RETURN(
      report.audit, AuditSolution(s.log, privacy, report.optimal_counts));
  if (!report.audit.satisfies_privacy && !s.options.laplace.has_value()) {
    // Without noise the solvers guarantee feasibility; a failed audit means
    // a bug, so surface it loudly rather than returning a bad log.
    return Status::Internal("privacy audit failed on noise-free counts: " +
                            report.audit.ToString());
  }

  report.solve_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace privsan
