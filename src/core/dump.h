// D-UMP: the Diversity Utility-Maximizing Problem (Section 5.3).
//
// Maximize the number of distinct query-url pairs retained in the output:
//
//   max  sum_ij y_ij
//   s.t. for every user log A_k: sum_{(i,j) in A_k} y_ij log t_ijk <= B,
//        y_ij in {0, 1},
//
// the simplified BIP of Equation 8 (Theorem 2 shows it shares its optimal
// y with the big-M MIP formulation). The output count of a retained pair is
// x_ij = y_ij = 1, i.e. one multinomial trial per retained pair.
//
// The BIP is NP-hard; privsan offers the paper's SPE heuristic plus the
// solver stand-ins used in Table 7 / Figure 5.
#ifndef PRIVSAN_CORE_DUMP_H_
#define PRIVSAN_CORE_DUMP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/privacy_params.h"
#include "core/ump.h"
#include "log/search_log.h"
#include "lp/bip_heuristics.h"
#include "lp/branch_and_bound.h"
#include "util/result.h"

namespace privsan {

// DumpSolverKind and DumpSolverKindToString now live in core/ump.h (shared
// with the unified UmpProblem interface); this header re-exports them.

struct DumpOptions {
  DumpSolverKind solver = DumpSolverKind::kSpe;
  // LP kernel configuration for every LP this solve runs — kLpRounding's
  // relaxation AND the branch & bound node LPs (one source of truth since
  // the PR-4 kernel rethreading; bnb.simplex is overridden).
  lp::SimplexOptions simplex;
  lp::BnbOptions bnb;          // used by kBranchAndBound
  // Fix y_j = 0 before branch & bound when some w_j > B (see
  // DumpSpec::integer_presolve in core/ump.h).
  bool integer_presolve = true;
};

struct DumpResult {
  // 0/1 output counts per PairId.
  std::vector<uint64_t> x;
  int64_t retained = 0;
  // retained / num_pairs of the preprocessed input.
  double diversity_ratio = 0.0;
  double wall_seconds = 0.0;
  bool proven_optimal = false;  // only branch & bound can prove optimality
  // LP engine effort (zero for SPE and the pure greedy): simplex pivots,
  // basis refactorizations, and branch & bound nodes / warm-started
  // re-solves, for the bench JSON artifacts.
  int64_t lp_iterations = 0;
  int lp_refactorizations = 0;
  int64_t nodes_explored = 0;
  int64_t warm_solves = 0;
  // Variables fixed to 0 by the integer presolve (branch & bound only).
  int integer_fixed = 0;
};

// Builds the Equation-8 BIP from the DP constraint system of `log`.
Result<lp::BipProblem> BuildDumpBip(const SearchLog& log,
                                    const PrivacyParams& params);

// The same transform from an already-built constraint system (row rhs =
// system.budget()). Shared by BuildDumpBip and the cached D-UMP UmpProblem.
lp::BipProblem BipFromConstraintRows(const DpConstraintSystem& system);

// `log` must be preprocessed (no unique pairs).
//
// DEPRECATED: one-shot compatibility wrapper over MakeDumpProblem
// (core/ump.h). It rebuilds the DP rows and the BIP on every call; use
// UmpProblem / SanitizerSession (core/session.h) for repeated solves and
// warm-started budget sweeps.
PRIVSAN_DEPRECATED("use MakeDumpProblem / SanitizerSession (core/ump.h)")
Result<DumpResult> SolveDump(const SearchLog& log, const PrivacyParams& params,
                             const DumpOptions& options = {});

}  // namespace privsan

#endif  // PRIVSAN_CORE_DUMP_H_
