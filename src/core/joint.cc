#include "core/joint.h"

#include <cmath>

#include "core/constraints.h"
#include "core/fump.h"
#include "core/oump.h"
#include "core/rounding.h"
#include "lp/model.h"

namespace privsan {

Result<JointUmpResult> SolveJointUmp(const SearchLog& log,
                                     const PrivacyParams& params,
                                     const JointUmpOptions& options) {
  if (options.size_weight < 0 || options.distance_weight < 0 ||
      (options.size_weight == 0 && options.distance_weight == 0)) {
    return Status::InvalidArgument(
        "joint UMP weights must be >= 0 and not both zero");
  }
  if (!(options.min_support > 0.0) || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must lie in (0, 1]");
  }
  if (log.total_clicks() == 0) {
    return Status::InvalidArgument("input log is empty");
  }
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system,
                           DpConstraintSystem::Build(log, params));

  JointUmpResult result;
  // Normalizer: the O-UMP optimum under the same budget.
  OumpOptions oump_options;
  oump_options.simplex = options.simplex;
  PRIVSAN_ASSIGN_OR_RETURN(OumpResult oump,
                           SolveOump(log, params, oump_options));
  result.lambda = oump.lambda;
  const double norm = std::max(1.0, oump.lp_objective);

  const double total = static_cast<double>(log.total_clicks());
  std::vector<PairId> frequent = FrequentPairs(log, options.min_support);

  lp::LpModel model(lp::ObjectiveSense::kMaximize);
  // x variables: objective contribution size_weight / norm each.
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    model.AddVariable(0.0, lp::kInfinity, options.size_weight / norm);
  }
  // y variables: the abs-value of the *count-space* support gap
  // |x_f − s_f · norm| / norm, penalized by distance_weight.
  std::vector<int> y_var(log.num_pairs(), -1);
  for (PairId f : frequent) {
    y_var[f] = model.AddVariable(0.0, lp::kInfinity,
                                 -options.distance_weight / norm);
  }
  for (size_t r = 0; r < system.num_rows(); ++r) {
    const int row =
        model.AddConstraint(lp::ConstraintSense::kLessEqual, system.budget());
    for (const DpConstraintEntry& e : system.Row(r)) {
      model.AddCoefficient(row, static_cast<int>(e.pair), e.log_t);
    }
  }
  for (PairId f : frequent) {
    const double anchor =
        static_cast<double>(log.pair_total(f)) / total * norm;
    int row = model.AddConstraint(lp::ConstraintSense::kLessEqual, anchor);
    model.AddCoefficient(row, static_cast<int>(f), 1.0);
    model.AddCoefficient(row, y_var[f], -1.0);
    row = model.AddConstraint(lp::ConstraintSense::kGreaterEqual, anchor);
    model.AddCoefficient(row, static_cast<int>(f), 1.0);
    model.AddCoefficient(row, y_var[f], 1.0);
  }
  PRIVSAN_RETURN_IF_ERROR(model.Validate());

  lp::SimplexSolver solver(options.simplex);
  lp::LpSolution lp = solver.Solve(model);
  if (lp.status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("joint UMP LP solve failed: ") +
                            lp::SolveStatusToString(lp.status));
  }

  result.objective = lp.objective;
  result.x_relaxed.assign(lp.x.begin(), lp.x.begin() + log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    result.relaxed_size += result.x_relaxed[p];
  }
  for (PairId f : frequent) {
    const double support = static_cast<double>(log.pair_total(f)) / total;
    result.relaxed_distance_sum +=
        std::abs(result.x_relaxed[f] / norm - support);
  }

  // Round without the greedy fill: filling blindly past the relaxed point
  // would trade the distance term away; the remainder repair alone keeps
  // the rounded point near the scalarized optimum.
  RoundingOptions rounding;
  rounding.greedy_fill = options.distance_weight == 0.0;
  result.x = RoundCounts(system, result.x_relaxed, rounding);
  for (uint64_t v : result.x) result.output_size += v;
  return result;
}

}  // namespace privsan
