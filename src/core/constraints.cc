#include "core/constraints.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/thread_pool.h"

namespace privsan {

namespace {

// One user's DP row. Returns false on a unique pair (c_ijk == c_ij), which
// Condition-1 preprocessing must have removed.
bool BuildRow(const SearchLog& log, UserId u,
              std::vector<DpConstraintEntry>* row) {
  const auto user_log = log.UserLogOf(u);
  row->clear();
  row->reserve(user_log.size());
  for (const PairCount& cell : user_log) {
    const uint64_t c_ij = log.pair_total(cell.pair);
    const uint64_t c_ijk = cell.count;
    if (c_ijk >= c_ij) return false;
    const double t =
        static_cast<double>(c_ij) / static_cast<double>(c_ij - c_ijk);
    row->push_back(DpConstraintEntry{cell.pair, std::log(t)});
  }
  return true;
}

Status UniquePairError() {
  return Status::FailedPrecondition(
      "log contains a unique query-url pair (c_ijk == c_ij); apply "
      "RemoveUniquePairs first (Condition 1 of Theorem 1)");
}

// Splices per-user rows (built in parallel) into the system in user order —
// the same order the serial build produces.
DpConstraintSystem AssembleRows(
    std::vector<std::vector<DpConstraintEntry>> per_user, size_t num_pairs) {
  std::vector<std::vector<DpConstraintEntry>> rows;
  std::vector<UserId> row_users;
  for (UserId u = 0; u < per_user.size(); ++u) {
    if (per_user[u].empty()) continue;
    rows.push_back(std::move(per_user[u]));
    row_users.push_back(u);
  }
  return DpConstraintSystem::FromRows(std::move(rows), std::move(row_users),
                                      num_pairs);
}

}  // namespace

Result<DpConstraintSystem> DpConstraintSystem::Build(
    const SearchLog& log, const PrivacyParams& params) {
  PRIVSAN_RETURN_IF_ERROR(params.Validate());
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system, BuildRows(log));
  system.budget_ = params.Budget();
  return system;
}

Result<DpConstraintSystem> DpConstraintSystem::BuildRows(
    const SearchLog& log) {
  return BuildRows(log, nullptr);
}

Result<DpConstraintSystem> DpConstraintSystem::BuildRows(
    const SearchLog& log, serve::ThreadPool* pool) {
  const size_t num_users = log.num_users();
  std::vector<std::vector<DpConstraintEntry>> per_user(num_users);
  std::atomic<bool> failed{false};
  serve::ParallelFor(pool, num_users, [&](size_t begin, size_t end) {
    for (UserId u = static_cast<UserId>(begin); u < end; ++u) {
      if (!BuildRow(log, u, &per_user[u])) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (failed.load()) return UniquePairError();
  return AssembleRows(std::move(per_user), log.num_pairs());
}

Result<DpRowPatch> DpConstraintSystem::PatchRows(
    const SearchLog& new_log, const SearchLog& old_log,
    const DpConstraintSystem& old_system, serve::ThreadPool* pool) {
  if (old_system.num_pairs() != old_log.num_pairs()) {
    return Status::InvalidArgument(
        "PatchRows: old_system was not built on old_log");
  }

  // Old pair by name, then per-new-pair: changed iff the pair is new or its
  // total click count c_ij moved (appended clicks always move it).
  std::unordered_map<std::string, PairId> old_pair_of_name;
  old_pair_of_name.reserve(old_log.num_pairs());
  for (PairId p = 0; p < old_log.num_pairs(); ++p) {
    old_pair_of_name.emplace(old_log.PairNameKey(p), p);
  }
  constexpr PairId kNoPair = static_cast<PairId>(-1);
  std::vector<uint8_t> changed(new_log.num_pairs(), 0);
  std::vector<PairId> new_to_old(new_log.num_pairs(), kNoPair);
  for (PairId p = 0; p < new_log.num_pairs(); ++p) {
    const auto it = old_pair_of_name.find(new_log.PairNameKey(p));
    if (it == old_pair_of_name.end()) {
      changed[p] = 1;  // newly retained (or genuinely new) pair
    } else {
      new_to_old[p] = it->second;
      if (old_log.pair_total(it->second) != new_log.pair_total(p)) {
        changed[p] = 1;
      }
    }
  }

  std::unordered_map<std::string, size_t> old_row_of_user;
  old_row_of_user.reserve(old_system.num_rows());
  for (size_t r = 0; r < old_system.num_rows(); ++r) {
    old_row_of_user.emplace(old_log.user_name(old_system.RowUser(r)), r);
  }

  const size_t num_users = new_log.num_users();
  std::vector<std::vector<DpConstraintEntry>> per_user(num_users);
  std::atomic<bool> failed{false};
  std::atomic<size_t> copied{0};
  std::atomic<size_t> rebuilt{0};
  serve::ParallelFor(pool, num_users, [&](size_t begin, size_t end) {
    size_t local_copied = 0;
    size_t local_rebuilt = 0;
    for (UserId u = static_cast<UserId>(begin); u < end; ++u) {
      const auto user_log = new_log.UserLogOf(u);
      if (user_log.empty()) continue;
      bool copyable =
          std::none_of(user_log.begin(), user_log.end(),
                       [&](const PairCount& cell) {
                         return changed[cell.pair] != 0;
                       });
      if (copyable) {
        const auto it = old_row_of_user.find(new_log.user_name(u));
        const std::span<const DpConstraintEntry> old_row =
            it != old_row_of_user.end()
                ? old_system.Row(it->second)
                : std::span<const DpConstraintEntry>{};
        // An untouched user's log holds the same pairs — but possibly under
        // permuted ids (Create and the first append derive their raws in
        // different insertion orders). Walk the new log in its own order
        // and pull each coefficient out of the old row by (old) PairId,
        // which old rows are sorted by.
        copyable = old_row.size() == user_log.size();
        if (copyable) {
          std::vector<DpConstraintEntry>& row = per_user[u];
          row.reserve(user_log.size());
          for (const PairCount& cell : user_log) {
            const PairId old_pair = new_to_old[cell.pair];
            const auto entry = old_pair == kNoPair
                ? old_row.end()
                : std::lower_bound(
                      old_row.begin(), old_row.end(), old_pair,
                      [](const DpConstraintEntry& e, PairId target) {
                        return e.pair < target;
                      });
            if (entry == old_row.end() || entry->pair != old_pair) {
              copyable = false;
              break;
            }
            row.push_back(DpConstraintEntry{cell.pair, entry->log_t});
          }
          if (!copyable) row.clear();
        }
      }
      if (copyable) {
        ++local_copied;
        continue;
      }
      ++local_rebuilt;
      if (!BuildRow(new_log, u, &per_user[u])) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
    copied.fetch_add(local_copied, std::memory_order_relaxed);
    rebuilt.fetch_add(local_rebuilt, std::memory_order_relaxed);
  });
  if (failed.load()) return UniquePairError();

  DpRowPatch result;
  result.system = AssembleRows(std::move(per_user), new_log.num_pairs());
  result.rows_copied = copied.load();
  result.rows_rebuilt = rebuilt.load();
  return result;
}

DpConstraintSystem DpConstraintSystem::FromRows(
    std::vector<std::vector<DpConstraintEntry>> rows,
    std::vector<UserId> row_users, size_t num_pairs) {
  DpConstraintSystem system;
  system.rows_ = std::move(rows);
  system.row_users_ = std::move(row_users);
  system.num_pairs_ = num_pairs;
  system.budget_ = 0.0;
  return system;
}

double DpConstraintSystem::RowLhs(size_t r, std::span<const double> x) const {
  double lhs = 0.0;
  for (const DpConstraintEntry& e : rows_[r]) {
    lhs += e.log_t * x[e.pair];
  }
  return lhs;
}

double DpConstraintSystem::RowLhs(size_t r,
                                  std::span<const uint64_t> x) const {
  double lhs = 0.0;
  for (const DpConstraintEntry& e : rows_[r]) {
    lhs += e.log_t * static_cast<double>(x[e.pair]);
  }
  return lhs;
}

double DpConstraintSystem::MaxRowLhs(std::span<const uint64_t> x) const {
  double max_lhs = 0.0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    max_lhs = std::max(max_lhs, RowLhs(r, x));
  }
  return max_lhs;
}

bool DpConstraintSystem::IsSatisfied(std::span<const uint64_t> x,
                                     double tol) const {
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (RowLhs(r, x) > budget_ + tol) return false;
  }
  return true;
}

size_t DpConstraintSystem::ResidentBytes() const {
  size_t bytes = rows_.capacity() * sizeof(rows_[0]) +
                 row_users_.capacity() * sizeof(UserId);
  for (const auto& row : rows_) {
    bytes += row.capacity() * sizeof(DpConstraintEntry);
  }
  return bytes;
}

}  // namespace privsan
