#include "core/constraints.h"

#include <algorithm>
#include <cmath>

namespace privsan {

Result<DpConstraintSystem> DpConstraintSystem::Build(
    const SearchLog& log, const PrivacyParams& params) {
  PRIVSAN_RETURN_IF_ERROR(params.Validate());
  PRIVSAN_ASSIGN_OR_RETURN(DpConstraintSystem system, BuildRows(log));
  system.budget_ = params.Budget();
  return system;
}

Result<DpConstraintSystem> DpConstraintSystem::BuildRows(const SearchLog& log) {
  DpConstraintSystem system;
  system.budget_ = 0.0;
  system.num_pairs_ = log.num_pairs();

  for (UserId u = 0; u < log.num_users(); ++u) {
    auto user_log = log.UserLogOf(u);
    if (user_log.empty()) continue;
    std::vector<DpConstraintEntry> row;
    row.reserve(user_log.size());
    for (const PairCount& cell : user_log) {
      const uint64_t c_ij = log.pair_total(cell.pair);
      const uint64_t c_ijk = cell.count;
      if (c_ijk >= c_ij) {
        return Status::FailedPrecondition(
            "log contains a unique query-url pair (c_ijk == c_ij); apply "
            "RemoveUniquePairs first (Condition 1 of Theorem 1)");
      }
      const double t =
          static_cast<double>(c_ij) / static_cast<double>(c_ij - c_ijk);
      row.push_back(DpConstraintEntry{cell.pair, std::log(t)});
    }
    system.rows_.push_back(std::move(row));
    system.row_users_.push_back(u);
  }
  return system;
}

double DpConstraintSystem::RowLhs(size_t r, std::span<const double> x) const {
  double lhs = 0.0;
  for (const DpConstraintEntry& e : rows_[r]) {
    lhs += e.log_t * x[e.pair];
  }
  return lhs;
}

double DpConstraintSystem::RowLhs(size_t r,
                                  std::span<const uint64_t> x) const {
  double lhs = 0.0;
  for (const DpConstraintEntry& e : rows_[r]) {
    lhs += e.log_t * static_cast<double>(x[e.pair]);
  }
  return lhs;
}

double DpConstraintSystem::MaxRowLhs(std::span<const uint64_t> x) const {
  double max_lhs = 0.0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    max_lhs = std::max(max_lhs, RowLhs(r, x));
  }
  return max_lhs;
}

bool DpConstraintSystem::IsSatisfied(std::span<const uint64_t> x,
                                     double tol) const {
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (RowLhs(r, x) > budget_ + tol) return false;
  }
  return true;
}

}  // namespace privsan
